//! The simulator: cluster state, event handlers, and the run loop.
//!
//! Construct a [`Simulator`] with
//! [`ScenarioBuilder`](crate::builder::ScenarioBuilder), then drive it with
//! [`Simulator::run_for`]. All behavior described in DESIGN.md §4 lives
//! here: network processing on irq cores, per-thread stage queues with
//! epoll/socket batching, connection-pool backpressure, fan-in
//! synchronization, thread blocking, and DVFS-aware service times.

use crate::connection::{Connection, ConnectionPool, UpEndpoint};
use crate::controller::{ControlAction, Controller, TickStats};
use crate::critpath::{CritSeg, CritSite, EdgeKind};
use crate::event::{EventKind, EventQueue, Packet, PacketDest};
use crate::ids::{
    ClientId, ConnectionId, ControllerId, InstanceId, JobId, MachineId, PathNodeId, PoolId,
    RequestId, ServiceId, StageId, ThreadId,
};
use crate::job::{JobArena, RequestArena};
use crate::machine::{Core, MachineSpec};
use crate::metrics::{LatencyRecorder, LatencySummary, WindowStats, WindowedRecorder};
use crate::path::{InstanceSelect, LinkKind, NodeTarget, PathSelect, RequestType};
use crate::service::ServiceModel;
use crate::time::{SimDuration, SimTime};
use crate::trace::{
    AuditCounts, AuditReport, ClientMeta, InstanceMeta, MachineMeta, PoolMeta, RequestTypeMeta,
    TraceAuditor, TraceEvent, TraceLog, TraceMeta,
};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;

/// Where a latency charge happened, resolved lazily against the request
/// inside `attribute_latency` (`Client` avoids a second arena lookup at the
/// call site — the charged request's own client is meant).
#[derive(Debug, Clone, Copy)]
enum CritSiteRef {
    Client,
    Instance(InstanceId),
    Stage(InstanceId, u32),
    Pool(PoolId),
}

/// Global simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed for all random streams.
    pub seed: u64,
    /// Completions before this time are excluded from the latency summary.
    pub warmup: SimDuration,
    /// If set, also collect fixed-width windowed latency series.
    pub window: Option<SimDuration>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            warmup: SimDuration::from_secs(1),
            window: None,
        }
    }
}

/// Execution model of an instance (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecModel {
    /// Jobs dispatch straight onto the instance's cores; one implicit
    /// worker per core; stage queues shared.
    Simple,
    /// Explicit worker threads contending for the instance's cores, with a
    /// context-switch penalty and support for thread blocking; stage queues
    /// are per-thread (connections are bound to threads).
    MultiThreaded {
        /// Context-switch overhead in nanoseconds, charged when a core runs
        /// a different thread than it ran last.
        ctx_switch_ns: u64,
    },
}

/// A batch of jobs a thread is currently servicing through one stage.
#[derive(Debug, Clone)]
pub(crate) struct Batch {
    pub(crate) stage: StageId,
    pub(crate) jobs: Vec<JobId>,
}

/// Runtime state of one worker thread.
#[derive(Debug)]
pub(crate) struct ThreadRt {
    pub(crate) running: Option<Batch>,
    /// Number of outstanding synchronous calls blocking this thread.
    pub(crate) block_depth: u32,
    pub(crate) queue_set: usize,
    pub(crate) held_core: Option<usize>,
}

impl ThreadRt {
    fn is_idle(&self) -> bool {
        self.running.is_none() && self.block_depth == 0
    }
}

/// Runtime state of one deployed instance.
#[derive(Debug)]
pub(crate) struct InstanceRt {
    pub(crate) name: String,
    pub(crate) service: ServiceId,
    pub(crate) machine: MachineId,
    /// Machine-local core indices owned by this instance.
    pub(crate) cores: Vec<usize>,
    pub(crate) exec: ExecModel,
    pub(crate) threads: Vec<ThreadRt>,
    /// Bit t set iff `threads[t].is_idle()` (no running batch, not
    /// blocked). Maintained at every `running`/`block_depth` transition so
    /// the dispatcher iterates set bits instead of scanning `ThreadRt`s.
    pub(crate) idle_mask: u64,
    /// One set shared (Simple) or one per thread.
    pub(crate) queue_sets: Vec<crate::queue::StageQueueSet>,
    pub(crate) shared_queues: bool,
    /// Round-robin counter for binding new connections to threads.
    pub(crate) rr_thread: usize,
    pub(crate) batches_dispatched: u64,
    pub(crate) jobs_processed: u64,
    /// Per-stage aggregates (indexed by stage).
    pub(crate) stage_agg: Vec<StageAgg>,
    /// When true, per-invocation service times are recorded per stage.
    pub(crate) profiling: bool,
    /// Profiled invocation durations (seconds) per stage.
    pub(crate) stage_samples: Vec<Vec<f64>>,
}

/// Internal per-stage counters.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StageAgg {
    pub(crate) invocations: u64,
    pub(crate) jobs: u64,
    pub(crate) busy_ns: u64,
}

/// Observability snapshot of one stage of one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name.
    pub name: String,
    /// Batch invocations executed.
    pub invocations: u64,
    /// Jobs processed across all invocations.
    pub jobs: u64,
    /// Mean batch size (`jobs / invocations`).
    pub mean_batch: f64,
    /// Total busy time spent in this stage.
    pub busy: SimDuration,
}

impl InstanceRt {
    /// Total queued jobs across all queue sets and stages.
    fn queue_depth(&self) -> usize {
        self.queue_sets
            .iter()
            .map(crate::queue::StageQueueSet::len)
            .sum()
    }
}

/// Runtime state of one machine.
#[derive(Debug)]
pub(crate) struct MachineRt {
    pub(crate) spec: MachineSpec,
    pub(crate) cores: Vec<Core>,
    /// Machine-local indices of the irq cores.
    pub(crate) irq_cores: Vec<usize>,
    pub(crate) net_queue: VecDeque<Packet>,
    /// One in-service slot per irq core.
    pub(crate) net_slots: Vec<Option<Packet>>,
    pub(crate) net_packets: u64,
    /// Cached `spec.dvfs.max_ghz()` (immutable after build): the energy
    /// update reads it once per batch and per packet.
    pub(crate) max_ghz: f64,
}

/// Runtime state of one client.
#[derive(Debug)]
pub(crate) struct ClientRt {
    pub(crate) spec: crate::client::ClientSpec,
    pub(crate) conns: Vec<ConnectionId>,
    pub(crate) next_conn: usize,
    /// Arrivals generated so far (trace-replay cursor).
    pub(crate) issued: u64,
    /// Stateful arrival-process runtime (bursty processes, typed traces).
    pub(crate) arrival: crate::client::ArrivalRt,
}

/// The discrete-event simulator.
pub struct Simulator {
    pub(crate) cfg: SimConfig,
    pub(crate) now: SimTime,
    pub(crate) events: EventQueue,
    pub(crate) rng_service: SmallRng,
    pub(crate) rng_arrival: SmallRng,
    pub(crate) rng_path: SmallRng,
    pub(crate) rng_network: SmallRng,
    pub(crate) machines: Vec<MachineRt>,
    pub(crate) services: Vec<ServiceModel>,
    pub(crate) instances: Vec<InstanceRt>,
    pub(crate) conns: Vec<Connection>,
    pub(crate) pools: Vec<ConnectionPool>,
    /// `(up_instance, down_instance) → pool`.
    pub(crate) pool_lookup: crate::fasthash::FastMap<(u32, u32), PoolId>,
    /// Free ephemeral connections per `(up_instance, down_instance)`.
    pub(crate) eph_free: crate::fasthash::FastMap<(u32, u32), Vec<ConnectionId>>,
    pub(crate) request_types: Vec<RequestType>,
    /// Per type, per node: does a job arriving at this node unblock the
    /// thread pinned by some earlier node's `block_thread_until`?
    pub(crate) unblocks_thread: Vec<Vec<bool>>,
    /// Per type, per node: round-robin instance-selection counters.
    pub(crate) rr_instance: Vec<Vec<usize>>,
    pub(crate) clients: Vec<ClientRt>,
    pub(crate) requests: RequestArena,
    pub(crate) jobs: JobArena,
    /// Recycled batch job vectors: `dispatch_instance` pops a scratch
    /// vector here and `on_stage_done` returns it, so steady-state batch
    /// assembly allocates nothing.
    pub(crate) batch_pool: Vec<Vec<JobId>>,
    pub(crate) controllers: Vec<Option<Box<dyn Controller>>>,
    // Metrics.
    pub(crate) e2e: LatencyRecorder,
    pub(crate) per_type: Vec<LatencyRecorder>,
    pub(crate) windowed: Option<WindowedRecorder>,
    pub(crate) interval_e2e: Vec<f64>,
    pub(crate) interval_instance: Vec<Vec<f64>>,
    pub(crate) instance_residency: Vec<LatencyRecorder>,
    pub(crate) generated: u64,
    pub(crate) completed: u64,
    pub(crate) timeouts: u64,
    pub(crate) completed_after_timeout: u64,
    pub(crate) events_processed: u64,
    pub(crate) stopped: bool,
    pub(crate) tracing: Option<TraceConfig>,
    pub(crate) traces: Vec<RequestTrace>,
    /// Span/event recorder (see [`crate::trace`]); `None` keeps every
    /// hot-path hook to a single branch.
    pub(crate) span_log: Option<Box<TraceLog>>,
    /// Live-telemetry state (see [`crate::telemetry`]); `None` keeps every
    /// hot-path hook to a single branch, same discipline as `span_log`.
    pub(crate) telemetry: Option<Box<crate::telemetry::TelemetryState>>,
    /// Busy-counter checkpoints backing the `*_utilization_since` queries.
    /// One is recorded at the warmup boundary and one per sampler tick.
    pub(crate) util_checkpoints: Vec<crate::machine::UtilCheckpoint>,
    /// Fault-injection state (see [`crate::fault`]); `None` keeps every
    /// hot-path hook to a single branch, same discipline as `span_log`.
    pub(crate) fault: Option<Box<crate::fault::FaultState>>,
    /// Requests terminally dropped by a fault.
    pub(crate) dropped: u64,
    /// Requests shed by an open circuit breaker.
    pub(crate) shed: u64,
    /// Retry emissions fired by client resilience policies.
    pub(crate) retried: u64,
    /// Degraded completions: shed responses plus quorum early-fires.
    pub(crate) degraded: u64,
    /// Quorum early-fire completions inside the measurement window; these
    /// sit in `e2e` but are excluded from goodput.
    pub(crate) degraded_measured: u64,
    /// Resolved requests still draining straggler jobs; excluded from the
    /// live count the trace auditor checks conservation against.
    pub(crate) resolved_pending: u64,
    /// Latencies of requests at their timeout deadline (the latency the
    /// client observed for failed calls); never mixed into `e2e`.
    pub(crate) e2e_timeout: LatencyRecorder,
}

/// Request-tracing configuration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TraceConfig {
    pub(crate) sample_every: u64,
    pub(crate) capacity: usize,
}

/// One traced span: a request's visit to one path node.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SpanRecord {
    /// Path-node name.
    pub node: String,
    /// Instance name the node executed on (empty for the client sink).
    pub instance: String,
    /// When the job entered the instance.
    pub enter: SimTime,
    /// When the node's execution finished.
    pub exit: SimTime,
}

/// A sampled end-to-end request trace (distributed-tracing style).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct RequestTrace {
    /// Request-type name.
    pub request_type: String,
    /// When the client generated the request.
    pub submitted: SimTime,
    /// When the response reached the client.
    pub completed: SimTime,
    /// Per-node spans, in node-id order.
    pub spans: Vec<SpanRecord>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("instances", &self.instances.len())
            .field("pending_events", &self.events.len())
            .field("generated", &self.generated)
            .field("completed", &self.completed)
            .finish()
    }
}

impl Simulator {
    // ------------------------------------------------------------------
    // Public driving API
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configuration this simulator was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs until `deadline` (simulated), then stops. In-flight requests at
    /// the deadline are abandoned (open-loop steady-state convention).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.events.schedule(deadline, EventKind::Stop);
        self.stopped = false;
        while !self.stopped {
            let Some(ev) = self.events.pop() else { break };
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            self.events_processed += 1;
            self.handle(ev.kind);
        }
    }

    /// Runs for `duration` of simulated time from now.
    pub fn run_for(&mut self, duration: SimDuration) {
        self.run_until(self.now + duration);
    }

    /// Advances the simulation through every pending event with timestamp
    /// `<= horizon`, then returns with the simulator *paused*: no `Stop`
    /// event is scheduled, the clock rests on the last processed event, and
    /// a later `run_until_paused`/[`Simulator::run_until`] call resumes
    /// exactly where this one left off.
    ///
    /// This is the chunked-advance primitive of the partitioned execution
    /// engine ([`crate::partition`]): a shard worker repeatedly advances
    /// its cells to conservative sync horizons. Because pausing injects no
    /// event, a run chopped into any sequence of non-decreasing horizons
    /// followed by a final [`Simulator::run_until`] pops the same events in
    /// the same `(time, seq)` order — and therefore draws the same random
    /// numbers and produces the same state — as one uninterrupted
    /// `run_until` (spec invariant **P4** in DESIGN.md §11, enforced by
    /// `chunked_advance_matches_single_shot` in `tests/partition.rs`).
    pub fn run_until_paused(&mut self, horizon: SimTime) {
        while self.events.peek_time().is_some_and(|t| t <= horizon) {
            let ev = self.events.pop().expect("peeked event must pop");
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            self.events_processed += 1;
            self.handle(ev.kind);
        }
    }

    /// Registers a controller; its first tick fires `first_tick()` from now.
    pub fn add_controller(&mut self, controller: Box<dyn Controller>) -> ControllerId {
        let id = ControllerId::from_raw(self.controllers.len() as u32);
        let first = controller.first_tick();
        self.controllers.push(Some(controller));
        self.events.schedule(
            self.now + first,
            EventKind::ControllerTick { controller: id },
        );
        id
    }

    /// Sets every core of `instance` to `freq_ghz`, snapped to the owning
    /// machine's DVFS levels. Returns the snapped frequency.
    pub fn set_instance_freq(&mut self, instance: InstanceId, freq_ghz: f64) -> f64 {
        let inst = &self.instances[instance.index()];
        let m = inst.machine.index();
        let snapped = self.machines[m].spec.dvfs.snap(freq_ghz);
        let cores = inst.cores.clone();
        for c in cores {
            self.machines[m].cores[c].freq_ghz = snapped;
        }
        snapped
    }

    /// Current frequency of `instance` (its first core), GHz.
    pub fn instance_freq(&self, instance: InstanceId) -> f64 {
        let inst = &self.instances[instance.index()];
        self.machines[inst.machine.index()].cores[inst.cores[0]].freq_ghz
    }

    // ------------------------------------------------------------------
    // Public metrics API
    // ------------------------------------------------------------------

    /// End-to-end latency summary over post-warmup completions.
    pub fn latency_summary(&self) -> LatencySummary {
        self.e2e.summary()
    }

    /// Raw post-warmup end-to-end latency samples (seconds).
    pub fn latency_samples(&self) -> &[f64] {
        self.e2e.samples()
    }

    /// Post-warmup residence-latency summary for one instance.
    pub fn instance_residency(&self, instance: InstanceId) -> LatencySummary {
        self.instance_residency[instance.index()].summary()
    }

    /// Post-warmup end-to-end latency summary for one request type — e.g.
    /// cache hits vs. misses of the 3-tier application.
    pub fn type_latency_summary(&self, ty: crate::ids::RequestTypeId) -> LatencySummary {
        self.per_type[ty.index()].summary()
    }

    /// Resolves a request type by name.
    pub fn request_type_by_name(&self, name: &str) -> Option<crate::ids::RequestTypeId> {
        self.request_types
            .iter()
            .position(|t| t.name == name)
            .map(|i| crate::ids::RequestTypeId::from_raw(i as u32))
    }

    /// The windowed latency series, if window collection was enabled.
    pub fn window_series(&self) -> Option<&[WindowStats]> {
        self.windowed.as_ref().map(|w| w.finished())
    }

    /// Requests generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests whose client-side timeout fired before completion.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Timed-out requests that later completed anyway (excluded from the
    /// latency summary).
    pub fn completed_after_timeout(&self) -> u64 {
        self.completed_after_timeout
    }

    /// Requests terminally dropped by a fault: a crash, drain, or exhausted
    /// retransmission killed their last in-flight branch, so no response
    /// ever reached the client. Zero unless a fault plan is installed.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Requests shed at emission by an open circuit breaker. Shed requests
    /// complete instantly with a degraded marker and touch no simulated
    /// resource.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Retry emissions fired by client resilience policies (each is also
    /// counted in [`Simulator::generated`]).
    pub fn retried(&self) -> u64 {
        self.retried
    }

    /// Responses delivered in degraded mode: breaker sheds plus completions
    /// whose quorum/best-effort fan-in fired before every branch arrived.
    pub fn degraded(&self) -> u64 {
        self.degraded
    }

    /// Degraded (early-fire) completions inside the measurement window.
    /// These are counted in the end-to-end latency summary but excluded
    /// from goodput, so `latency.count - degraded_measured` is the exact
    /// number of full-fidelity, within-deadline completions measured.
    pub fn degraded_measured(&self) -> u64 {
        self.degraded_measured
    }

    /// Latency summary of requests at their timeout deadline — the latency
    /// the client actually observed for its failed calls. Kept strictly
    /// separate from the success-path summary so timeouts can never improve
    /// the reported tail.
    pub fn timeout_latency_summary(&self) -> LatencySummary {
        self.e2e_timeout.summary()
    }

    /// Raw deadline-pinned latency samples of timed-out requests (seconds),
    /// the data behind [`Simulator::timeout_latency_summary`]. The
    /// partitioned merge concatenates these across cells and re-summarizes,
    /// which is exact because [`LatencySummary::from_samples`] sorts.
    pub fn timeout_latency_samples(&self) -> &[f64] {
        self.e2e_timeout.samples()
    }

    /// Number of client-owned connections currently holding an outstanding
    /// request. A timed-out call releases its slot at the deadline, so after
    /// a timeout burst this can never exceed the number of launched requests
    /// that are still inside their deadline.
    pub fn busy_client_connections(&self) -> usize {
        self.conns
            .iter()
            .filter(|c| c.busy && matches!(c.up, crate::connection::UpEndpoint::Client(_)))
            .count()
    }

    /// True if [`Simulator::install_faults`] has been called.
    pub fn faults_installed(&self) -> bool {
        self.fault.is_some()
    }

    /// The fault/resilience counters and fault-window timeline, or `None`
    /// when no fault plan is installed.
    pub fn fault_summary(&self) -> Option<crate::fault::FaultSummary> {
        let f = self.fault.as_deref()?;
        let mut s = f.summary_snapshot();
        s.dropped = self.dropped;
        s.shed = self.shed;
        s.retried = self.retried;
        s.degraded = self.degraded;
        s.timed_out = self.timeouts;
        Some(s)
    }

    /// Enables request tracing: every `sample_every`-th completion is
    /// recorded (up to `capacity` traces).
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    pub fn enable_tracing(&mut self, sample_every: u64, capacity: usize) {
        assert!(sample_every > 0, "sample_every must be positive");
        self.tracing = Some(TraceConfig {
            sample_every,
            capacity,
        });
        self.traces.reserve(capacity.min(4096));
    }

    /// The traces recorded so far.
    pub fn traces(&self) -> &[RequestTrace] {
        &self.traces
    }

    /// Enables per-request span tracing (see [`crate::trace`]): every
    /// request emission, network processing interval, stage enqueue, batch
    /// service, pool interaction, fan-in arrival, and completion is
    /// recorded, up to `capacity` events (further events are counted as
    /// dropped). Tracing every hot-path site costs simulator speed; leave
    /// it disabled for throughput experiments.
    pub fn enable_span_tracing(&mut self, capacity: usize) {
        self.span_log = Some(Box::new(TraceLog::new(capacity)));
    }

    /// The span log, if span tracing is enabled.
    pub fn span_log(&self) -> Option<&TraceLog> {
        self.span_log.as_deref()
    }

    /// Takes the span log out of the simulator (disabling further
    /// recording).
    pub fn take_span_log(&mut self) -> Option<TraceLog> {
        self.span_log.take().map(|b| *b)
    }

    /// Entity names for rendering traces: machines, instances (with their
    /// stage names), and request types (with their node names).
    pub fn trace_meta(&self) -> TraceMeta {
        TraceMeta {
            machines: self
                .machines
                .iter()
                .map(|m| MachineMeta {
                    name: m.spec.name.clone(),
                    cores: m.cores.len(),
                })
                .collect(),
            instances: self
                .instances
                .iter()
                .map(|i| InstanceMeta {
                    name: i.name.clone(),
                    machine: i.machine.raw(),
                    stages: self.services[i.service.index()]
                        .stages
                        .iter()
                        .map(|s| s.name.clone())
                        .collect(),
                })
                .collect(),
            request_types: self
                .request_types
                .iter()
                .map(|t| RequestTypeMeta {
                    name: t.name.clone(),
                    nodes: t.nodes.iter().map(|n| n.name.clone()).collect(),
                })
                .collect(),
            pools: self
                .pools
                .iter()
                .map(|p| PoolMeta {
                    up: self.instances[p.up_instance.index()].name.clone(),
                    down: self.instances[p.down_instance.index()].name.clone(),
                })
                .collect(),
            clients: self
                .clients
                .iter()
                .map(|c| ClientMeta {
                    name: c.spec.name.clone(),
                })
                .collect(),
        }
    }

    /// Renders the span log as Chrome `trace_event` JSON (viewable in
    /// `about:tracing` or Perfetto), or `None` if span tracing is disabled.
    pub fn chrome_trace(&self) -> Option<serde_json::Value> {
        self.span_log
            .as_deref()
            .map(|log| crate::trace::chrome_trace(log, &self.trace_meta()))
    }

    /// Ground-truth counters for trace auditing.
    pub fn audit_counts(&self) -> AuditCounts {
        AuditCounts {
            generated: self.generated,
            completed: self.completed,
            live_requests: self.requests.live() as u64 - self.resolved_pending,
            timeouts: self.timeouts,
            measured: self.e2e.len() as u64,
            dropped: self.dropped,
            shed: self.shed,
        }
    }

    /// Audits the span log against the simulator's invariants (see
    /// [`TraceAuditor`]), or `None` if span tracing is disabled.
    pub fn audit_trace(&self) -> Option<AuditReport> {
        self.span_log
            .as_deref()
            .map(|log| TraceAuditor::new().audit(log, &self.audit_counts()))
    }

    /// The streaming critical-path contribution profile accumulated so far
    /// (label-resolved and mergeable), or `None` unless telemetry was
    /// enabled with [`TelemetryConfig::critpath`](crate::telemetry::TelemetryConfig)
    /// set.
    pub fn critpath_profile(&self) -> Option<crate::critpath::CpcProfile> {
        let tel = self.telemetry.as_deref()?;
        if !tel.cfg.critpath {
            return None;
        }
        Some(tel.crit.snapshot(&self.trace_meta()))
    }

    /// Starts recording per-invocation service times for every stage of
    /// `instance` — the paper's profiling step: the samples can be turned
    /// into [`Histogram`](crate::histogram::Histogram)s and fed back as
    /// empirical service-time distributions.
    pub fn enable_stage_profiling(&mut self, instance: InstanceId) {
        self.instances[instance.index()].profiling = true;
    }

    /// The profiled invocation durations (seconds) of one stage.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range for the instance's service.
    pub fn stage_profile(&self, instance: InstanceId, stage: usize) -> &[f64] {
        &self.instances[instance.index()].stage_samples[stage]
    }

    /// Schedules a DVFS change at a future simulated time (a cluster
    /// administration operation, §III-A). `core` of `None` retunes the
    /// whole machine.
    pub fn schedule_dvfs(
        &mut self,
        at: SimTime,
        machine: MachineId,
        core: Option<crate::ids::CoreId>,
        freq_ghz: f64,
    ) {
        self.events.schedule(
            at,
            EventKind::DvfsSet(Box::new(crate::event::DvfsChange {
                machine,
                core,
                freq_ghz,
            })),
        );
    }

    /// Energy consumed by `machine` so far, joules: accumulated dynamic
    /// (cubic-in-frequency) energy plus static power over elapsed time.
    pub fn machine_energy_j(&self, machine: MachineId) -> f64 {
        let m = &self.machines[machine.index()];
        let dynamic: f64 = m.cores.iter().map(|c| c.dyn_energy_j).sum();
        let static_j = m.spec.power.idle_w * m.cores.len() as f64 * self.now.as_secs_f64();
        dynamic + static_j
    }

    /// Total energy consumed by the whole cluster so far, joules.
    pub fn cluster_energy_j(&self) -> f64 {
        (0..self.machines.len())
            .map(|m| self.machine_energy_j(MachineId::from_raw(m as u32)))
            .sum()
    }

    /// Free connections and waiting jobs of every pool, in pool order —
    /// direct visibility into connection-pool backpressure.
    pub fn pool_stats(&self) -> Vec<(InstanceId, InstanceId, usize, usize)> {
        self.pools
            .iter()
            .map(|p| {
                (
                    p.up_instance,
                    p.down_instance,
                    p.free_count(),
                    p.waiter_count(),
                )
            })
            .collect()
    }

    /// Requests currently in flight.
    pub fn live_requests(&self) -> usize {
        self.requests.live()
    }

    /// Jobs currently in flight.
    pub fn live_jobs(&self) -> usize {
        self.jobs.live()
    }

    /// Events processed so far (simulator-speed statistic).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of deployed instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Resolves an instance by name.
    pub fn instance_by_name(&self, name: &str) -> Option<InstanceId> {
        self.instances
            .iter()
            .position(|i| i.name == name)
            .map(|i| InstanceId::from_raw(i as u32))
    }

    /// Mean core utilization of an instance since time zero.
    ///
    /// **Deprecated in spirit**: averaging from time zero folds the warmup
    /// ramp into the number, which skews short runs. Prefer
    /// [`Simulator::instance_utilization_since`] with the warmup boundary
    /// (or any checkpointed time); this wrapper is kept for callers that
    /// genuinely want the whole-run average.
    ///
    /// **Removal timeline**: this wrapper (and
    /// [`Simulator::network_utilization`]) will gain a `#[deprecated]`
    /// attribute in the release after next and be removed in 0.3.0;
    /// migrate to the `_since` form with `SimTime::ZERO` to keep the
    /// whole-run semantics.
    pub fn instance_utilization(&self, instance: InstanceId) -> f64 {
        let inst = &self.instances[instance.index()];
        if self.now == SimTime::ZERO || inst.cores.is_empty() {
            return 0.0;
        }
        let m = &self.machines[inst.machine.index()];
        let busy: u64 = inst.cores.iter().map(|&c| m.cores[c].busy_ns).sum();
        busy as f64 / (self.now.as_nanos() as f64 * inst.cores.len() as f64)
    }

    /// Mean irq-core utilization of a machine since time zero.
    ///
    /// **Deprecated in spirit**: see [`Simulator::instance_utilization`] —
    /// prefer [`Simulator::network_utilization_since`] to exclude warmup.
    /// Shares that wrapper's removal timeline (attribute next release,
    /// gone in 0.3.0).
    pub fn network_utilization(&self, machine: MachineId) -> f64 {
        let m = &self.machines[machine.index()];
        if self.now == SimTime::ZERO || m.irq_cores.is_empty() {
            return 0.0;
        }
        let busy: u64 = m.irq_cores.iter().map(|&c| m.cores[c].busy_ns).sum();
        busy as f64 / (self.now.as_nanos() as f64 * m.irq_cores.len() as f64)
    }

    /// Total jobs currently queued at an instance.
    pub fn instance_queue_depth(&self, instance: InstanceId) -> usize {
        self.instances[instance.index()].queue_depth()
    }

    /// Per-stage observability: invocation counts, mean batch sizes, and
    /// busy time for each stage of `instance`. Mean batch size above 1 on
    /// an epoll stage is direct evidence of batching amortization.
    pub fn instance_stage_stats(&self, instance: InstanceId) -> Vec<StageStats> {
        let inst = &self.instances[instance.index()];
        let svc = &self.services[inst.service.index()];
        inst.stage_agg
            .iter()
            .zip(&svc.stages)
            .map(|(agg, spec)| StageStats {
                name: spec.name.clone(),
                invocations: agg.invocations,
                jobs: agg.jobs,
                mean_batch: if agg.invocations == 0 {
                    0.0
                } else {
                    agg.jobs as f64 / agg.invocations as f64
                },
                busy: SimDuration::from_nanos(agg.busy_ns),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::ClientArrival { client } => self.on_client_arrival(client),
            EventKind::NetDeliver { job, instance } => self.deliver_to_instance(job, instance),
            EventKind::NetEnqueue { job, instance } => self.on_net_enqueue(job, instance),
            EventKind::NetDone { machine, slot } => self.on_net_done(machine, slot as usize),
            EventKind::StageDone { instance, thread } => self.on_stage_done(instance, thread),
            EventKind::DeliverToClient { request } => self.on_deliver_to_client(request),
            EventKind::DvfsSet(change) => {
                let m = &mut self.machines[change.machine.index()];
                let snapped = m.spec.dvfs.snap(change.freq_ghz);
                match change.core {
                    Some(c) => m.cores[c.index()].freq_ghz = snapped,
                    None => {
                        for c in &mut m.cores {
                            c.freq_ghz = snapped;
                        }
                    }
                }
            }
            EventKind::RequestTimeout { request } => self.on_request_timeout(request),
            EventKind::ControllerTick { controller } => self.on_controller_tick(controller),
            EventKind::TelemetrySample { recurring } => self.on_telemetry_sample(recurring),
            EventKind::FaultStart { fault } => self.on_fault_start(fault as usize),
            EventKind::FaultEnd { fault } => self.on_fault_end(fault as usize),
            EventKind::RetryEmit(retry) => self.on_retry_emit(
                retry.client,
                retry.request_type,
                retry.attempt,
                retry.size_bytes,
            ),
            EventKind::HedgeFire { request } => self.on_hedge_fire(request),
            EventKind::NetRetransmit(rt) => self.on_net_retransmit(rt.job, rt.from, rt.dest),
            EventKind::Stop => {
                // Close windowed-latency windows up to the stop time so
                // trailing idle periods appear as explicit count=0 windows
                // instead of silently truncating the time axis.
                if let Some(w) = &mut self.windowed {
                    w.advance_to(self.now);
                }
                self.stopped = true;
            }
        }
    }

    /// Charges the request's not-yet-attributed time `[mark, now]` to
    /// `component` and advances the frontier to now. Consecutive charges
    /// telescope, so on completion the components sum exactly to
    /// `completed - submitted`. A single branch when telemetry is off.
    ///
    /// `site` records *where* the time was spent; when the streaming
    /// critical-path mode is on, every non-zero charge additionally buffers
    /// a [`CritSeg`] on the request (folded into the CPC profile at
    /// completion).
    #[inline]
    fn attribute_latency(
        &mut self,
        rid: RequestId,
        component: crate::telemetry::LatencyComponent,
        site: CritSiteRef,
    ) {
        let crit_on = match self.telemetry.as_deref() {
            None => return,
            Some(t) => t.cfg.critpath,
        };
        if let Some(req) = self.requests.get_mut(rid) {
            let dt = (self.now - req.mark).as_nanos();
            req.mark = self.now;
            req.components_ns[component as usize] += dt;
            if crit_on && dt > 0 {
                // A retry's launch delay is backoff, not ordinary client
                // connection wait; hedge twins keep the plain kind.
                let kind = if component == crate::telemetry::LatencyComponent::ClientWait
                    && req.attempt > 0
                    && req.hedge_twin.is_none()
                {
                    EdgeKind::RetryBackoff
                } else {
                    EdgeKind::from_component(component)
                };
                let site = match site {
                    CritSiteRef::Client => CritSite::Client(req.client),
                    CritSiteRef::Instance(i) => CritSite::Instance(i),
                    CritSiteRef::Stage(i, s) => CritSite::Stage(i, s),
                    CritSiteRef::Pool(p) => CritSite::Pool(p),
                };
                req.crit.push(CritSeg { site, kind, ns: dt });
            }
        }
    }

    // ------------------------------------------------------------------
    // Client side
    // ------------------------------------------------------------------

    fn on_client_arrival(&mut self, client: ClientId) {
        let c = client.index();
        // Open-loop clients self-schedule the next arrival (unless a
        // replayed trace is exhausted); closed-loop users reissue from
        // on_deliver_to_client instead.
        let issued = self.clients[c].issued;
        self.clients[c].issued += 1;
        if self.clients[c].spec.closed_loop.is_none() {
            let gap = {
                let ClientRt { spec, arrival, .. } = &mut self.clients[c];
                spec.arrivals
                    .gap_rt(arrival, issued, self.now, &mut self.rng_arrival)
            };
            if let Some(gap) = gap {
                self.events
                    .schedule(self.now + gap, EventKind::ClientArrival { client });
            }
        }

        // Create the request: a typed trace dictates the type of arrival
        // `issued`; everything else draws from the client's mix.
        let ty = match self.clients[c].arrival.trace_type(issued) {
            Some(ty) => ty,
            None => self.clients[c].spec.mix.choose(&mut self.rng_path),
        };
        let node_count = self.request_types[ty.index()].nodes.len();
        let rid = self.requests.alloc(ty, client, self.now, node_count);
        let size = self.clients[c]
            .spec
            .request_size
            .sample(&mut self.rng_path)
            .max(0.0);
        self.requests
            .get_mut(rid)
            .expect("fresh request")
            .size_bytes = size;
        self.generated += 1;
        if let Some(log) = self.span_log.as_deref_mut() {
            log.record(TraceEvent::RequestEmitted {
                request: rid,
                request_type: ty,
                client,
                t: self.now,
            });
        }
        // Fault hooks: an open breaker sheds the request before it touches
        // any timer or connection; otherwise an optional hedge deadline is
        // armed. A single branch when no fault plan is installed.
        if self.fault.is_some() && self.fault_admission(rid, client) {
            return;
        }
        if let Some(timeout_s) = self.clients[c].spec.timeout_s {
            self.events.schedule(
                self.now + SimDuration::from_secs_f64(timeout_s),
                EventKind::RequestTimeout { request: rid },
            );
        }

        // Assign a connection round-robin; queue behind it if busy.
        let n_conns = self.clients[c].conns.len();
        let ci = self.clients[c].next_conn;
        // Wrap without the integer divide; `next_conn` stays in range.
        self.clients[c].next_conn = if ci + 1 == n_conns { 0 } else { ci + 1 };
        let conn_id = self.clients[c].conns[ci];
        self.requests
            .get_mut(rid)
            .expect("fresh request")
            .client_conn = Some(conn_id);
        if self.conns[conn_id.index()].busy {
            self.conns[conn_id.index()].pending.push_back(rid);
        } else {
            self.launch_request(rid, conn_id);
        }
    }

    /// Writes a request onto its (free) client connection: creates the root
    /// job and sends it over the network.
    fn launch_request(&mut self, rid: RequestId, conn_id: ConnectionId) {
        // Time between generation and hitting the wire is client-side
        // connection wait (coordinated-omission territory).
        self.attribute_latency(
            rid,
            crate::telemetry::LatencyComponent::ClientWait,
            CritSiteRef::Client,
        );
        self.conns[conn_id.index()].busy = true;
        let ty = {
            let req = self.requests.get_mut(rid).expect("request exists");
            req.launched = Some(self.now);
            req.ty
        };
        if let Some(log) = self.span_log.as_deref_mut() {
            log.record(TraceEvent::RequestLaunched {
                request: rid,
                conn: conn_id,
                t: self.now,
            });
        }
        let root = self.request_types[ty.index()].root;
        let job = self.jobs.alloc(rid, root);
        self.requests
            .get_mut(rid)
            .expect("request exists")
            .live_jobs += 1;
        self.jobs.get_mut(job).expect("fresh job").conn = Some(conn_id);
        let dest = self.conns[conn_id.index()].down_instance;
        self.send_job(job, None, dest);
    }

    fn on_deliver_to_client(&mut self, rid: RequestId) {
        // The final leg (last node exit → client) is network time.
        self.attribute_latency(
            rid,
            crate::telemetry::LatencyComponent::Network,
            CritSiteRef::Client,
        );
        let (
            latency,
            conn_id,
            live_jobs,
            client,
            timed_out,
            ty,
            submitted,
            components,
            conn_released,
            early_fire,
            superseded,
            hedge_twin,
        ) = {
            let req = self.requests.get(rid).expect("completing request exists");
            (
                self.now - req.submitted,
                req.client_conn.expect("launched request has a connection"),
                req.live_jobs,
                req.client,
                req.timed_out,
                req.ty,
                req.submitted,
                req.components_ns,
                req.conn_released,
                req.early_fire,
                req.superseded,
                req.hedge_twin,
            )
        };
        debug_assert!(
            live_jobs == 0 || early_fire,
            "request completed with live jobs"
        );
        debug_assert!(
            self.telemetry.is_none() || components.iter().sum::<u64>() == latency.as_nanos(),
            "latency decomposition does not telescope: {components:?} vs {} ns",
            latency.as_nanos()
        );
        if timed_out {
            // Already accounted as a timeout error; exclude from latency.
            self.completed_after_timeout += 1;
        } else if superseded {
            // The hedge twin already delivered the logical response; this
            // late copy closes the books but is not measured.
        } else {
            self.e2e.record(self.now, latency);
            self.per_type[ty.index()].record(self.now, latency);
            if let Some(w) = &mut self.windowed {
                w.record(self.now, latency);
            }
            if !self.controllers.is_empty() {
                self.interval_e2e.push(latency.as_secs_f64());
            }
            if early_fire {
                // A quorum/best-effort fan-in answered without every
                // branch: a degraded (but successful) response.
                self.degraded += 1;
                if self.now >= SimTime::ZERO + self.cfg.warmup {
                    self.degraded_measured += 1;
                }
            }
            if let Some(twin) = hedge_twin {
                // First delivery wins the hedge race.
                if let Some(tr) = self.requests.get_mut(twin) {
                    tr.superseded = true;
                }
            }
            self.fault_on_success(client);
        }
        self.completed += 1;
        self.maybe_trace(rid);
        let measured = !timed_out && !superseded && self.now >= SimTime::ZERO + self.cfg.warmup;
        if let Some(log) = self.span_log.as_deref_mut() {
            log.record(TraceEvent::RequestCompleted {
                request: rid,
                request_type: ty,
                timed_out,
                measured,
                t: self.now,
            });
        }
        if let Some(tel) = self.telemetry.as_deref_mut() {
            tel.on_completion(
                self.now,
                submitted,
                components,
                latency,
                timed_out || superseded,
            );
            if tel.cfg.critpath && measured {
                // Fold the request's critical path into the CPC profile.
                // `telemetry` and `requests` are disjoint fields, so both
                // mutable borrows coexist.
                if let Some(req) = self.requests.get(rid) {
                    debug_assert_eq!(
                        req.crit.iter().map(|s| s.ns).sum::<u64>(),
                        latency.as_nanos(),
                        "critical-path segments do not telescope"
                    );
                    tel.crit.fold(latency.as_nanos(), &req.crit);
                }
            }
        }
        if live_jobs == 0 {
            self.requests.free(rid);
        } else {
            // Quorum stragglers are still in flight: defer the free until
            // the last one drains (see `try_finalize`).
            self.requests
                .get_mut(rid)
                .expect("completing request exists")
                .resolved = true;
            self.resolved_pending += 1;
        }

        // Free the connection (unless the timeout already did) and launch
        // the next queued request if any.
        if !conn_released {
            let next = {
                let conn = &mut self.conns[conn_id.index()];
                conn.busy = false;
                conn.pending.pop_front()
            };
            if let Some(next_rid) = next {
                self.launch_request(next_rid, conn_id);
            }
            // Closed-loop users reissue after a think time. A superseded
            // copy must not: its hedge twin's delivery already did.
            if !superseded {
                self.closed_loop_reissue(client);
            }
        }
    }

    /// Schedules a closed-loop user's next arrival after a think time;
    /// no-op for open-loop clients.
    fn closed_loop_reissue(&mut self, client: ClientId) {
        let think = self.clients[client.index()]
            .spec
            .closed_loop
            .as_ref()
            .map(|cl| SimDuration::from_secs_f64(cl.think_time.sample(&mut self.rng_arrival)));
        if let Some(think) = think {
            self.events
                .schedule(self.now + think, EventKind::ClientArrival { client });
        }
    }

    fn on_request_timeout(&mut self, rid: RequestId) {
        // The request may have completed long ago; its slot id is then
        // stale and the lookup simply misses.
        let (launched, client, conn_id, ty, attempt, size, submitted) = {
            let Some(req) = self.requests.get_mut(rid) else {
                return;
            };
            if req.timed_out || req.resolved || req.superseded {
                return;
            }
            req.timed_out = true;
            let launched = req.launched.is_some();
            if launched {
                req.conn_released = true;
            }
            (
                launched,
                req.client,
                req.client_conn,
                req.ty,
                req.attempt,
                req.size_bytes,
                req.submitted,
            )
        };
        self.timeouts += 1;
        // The client observed exactly the deadline for this failed call —
        // a distinct latency outcome, never mixed into the success summary.
        self.e2e_timeout.record(self.now, self.now - submitted);
        if let Some(log) = self.span_log.as_deref_mut() {
            log.record(TraceEvent::RequestTimeout {
                request: rid,
                t: self.now,
            });
        }
        if launched {
            // The client abandons the call at the deadline: its connection
            // slot frees immediately even though the server-side work keeps
            // draining (the late response is discarded on arrival).
            let conn_id = conn_id.expect("launched request has a connection");
            let next = {
                let conn = &mut self.conns[conn_id.index()];
                conn.busy = false;
                conn.pending.pop_front()
            };
            if let Some(next_rid) = next {
                self.launch_request(next_rid, conn_id);
            }
            self.closed_loop_reissue(client);
        }
        // Resilience policy: a timeout is a client-observed failure.
        self.fault_on_failure(client, ty, attempt, size);
    }

    /// Records a sampled trace of a completing request.
    fn maybe_trace(&mut self, rid: RequestId) {
        let Some(cfg) = self.tracing else { return };
        if self.traces.len() >= cfg.capacity || !self.completed.is_multiple_of(cfg.sample_every) {
            return;
        }
        let req = self.requests.get(rid).expect("completing request exists");
        let ty = &self.request_types[req.ty.index()];
        let spans = req
            .nodes
            .iter()
            .zip(&ty.nodes)
            .filter_map(|(nr, spec)| match (nr.enter, nr.exit) {
                (Some(enter), Some(exit)) => Some(SpanRecord {
                    node: spec.name.clone(),
                    instance: nr
                        .instance
                        .map(|i| self.instances[i.index()].name.clone())
                        .unwrap_or_default(),
                    enter,
                    exit,
                }),
                _ => None,
            })
            .collect();
        self.traces.push(RequestTrace {
            request_type: ty.name.clone(),
            submitted: req.submitted,
            completed: self.now,
            spans,
        });
    }

    // ------------------------------------------------------------------
    // Network
    // ------------------------------------------------------------------

    /// Sends a job from `from` (or a client, if `None`) to `dest`. Cross-
    /// machine hops pay wire latency and the destination's interrupt
    /// processing; same-machine hops pay only loopback latency.
    fn send_job(&mut self, job: JobId, from: Option<InstanceId>, dest: InstanceId) {
        let m = self.instances[dest.index()].machine.index();
        // Fault: packet loss toward a degraded machine. Drawn from the
        // dedicated fault RNG stream so fault-free runs stay byte-identical.
        if let Some(f) = self.fault.as_deref_mut() {
            let p = f.net_drop_p[m];
            if p > 0.0 && f.rng.gen::<f64>() < p {
                f.summary.packets_dropped += 1;
                self.on_packet_dropped(job, from, dest);
                return;
            }
        }
        let local = from
            .map(|f| self.instances[f.index()].machine.index() == m)
            .unwrap_or(false);
        let net = &self.machines[m].spec.network;
        let mut delay = if local {
            net.loopback_latency.sample(&mut self.rng_network)
        } else {
            net.wire_latency.sample(&mut self.rng_network)
        };
        if !local {
            if let Some(bw_gbps) = net.bandwidth_gbps {
                let bytes = self
                    .jobs
                    .get(job)
                    .and_then(|j| self.requests.get(j.request))
                    .map(|r| r.size_bytes)
                    .unwrap_or(0.0);
                delay += bytes * 8.0 / (bw_gbps * 1e9);
            }
        }
        if let Some(f) = self.fault.as_deref() {
            delay += f.net_added_s[m];
        }
        // The delivery route is static per (sender, dest): loopback traffic
        // and machines without interrupt cores bypass the network service,
        // so the choice is made here and the delivery event stays compact.
        let kind = if local || self.machines[m].irq_cores.is_empty() {
            EventKind::NetDeliver {
                job,
                instance: dest,
            }
        } else {
            EventKind::NetEnqueue {
                job,
                instance: dest,
            }
        };
        self.events
            .schedule(self.now + SimDuration::from_secs_f64(delay), kind);
    }

    /// A degraded link dropped `job`'s packet: retransmit within the
    /// network policy's budget, else the job dies (and its request with it,
    /// if this was the last live branch).
    fn on_packet_dropped(&mut self, job: JobId, from: Option<InstanceId>, dest: InstanceId) {
        let retransmit = {
            let f = self.fault.as_deref_mut().expect("drop implies faults");
            match (f.net_policy, self.jobs.get_mut(job)) {
                (Some(pol), Some(j)) if j.net_attempts < pol.retransmit_limit => {
                    j.net_attempts += 1;
                    f.summary.retransmits += 1;
                    let backoff = pol.retransmit_backoff_s
                        * f64::from(1u32 << u32::from(j.net_attempts - 1).min(16));
                    Some(SimDuration::from_secs_f64(backoff))
                }
                _ => None,
            }
        };
        match retransmit {
            Some(delay) => self.events.schedule(
                self.now + delay,
                EventKind::NetRetransmit(Box::new(crate::event::RetransmitSpec {
                    job,
                    from,
                    dest,
                })),
            ),
            None => self.kill_job(job),
        }
    }

    /// Handles [`EventKind::NetRetransmit`]: re-offers the packet to the
    /// network (which re-rolls the drop). The job may have died in the
    /// meantime (e.g. its instance crashed) — then the packet evaporates.
    fn on_net_retransmit(&mut self, job: JobId, from: Option<InstanceId>, dest: InstanceId) {
        if self.jobs.get(job).is_some() {
            self.send_job(job, from, dest);
        }
    }

    /// Handles [`EventKind::NetEnqueue`]: the packet enters the machine's
    /// network-processing service ([`EventKind::NetDeliver`] arrivals skip
    /// this and go straight to [`Self::deliver_to_instance`]).
    fn on_net_enqueue(&mut self, job: JobId, inst: InstanceId) {
        let m = self.instances[inst.index()].machine.index();
        self.machines[m].net_queue.push_back(Packet {
            job,
            dest: PacketDest::Instance(inst),
            local: false,
        });
        self.net_dispatch(m);
    }

    fn net_dispatch(&mut self, m: usize) {
        loop {
            let machine = &mut self.machines[m];
            if machine.net_queue.is_empty() {
                break;
            }
            let Some(slot) = machine.net_slots.iter().position(Option::is_none) else {
                break;
            };
            let packet = machine.net_queue.pop_front().expect("checked non-empty");
            machine.net_slots[slot] = Some(packet);
            machine.net_packets += 1;
            let core = machine.irq_cores[slot];
            machine.cores[core].busy = true;
            let rx = machine.spec.network.rx_time.sample(&mut self.rng_network);
            let dur = SimDuration::from_secs_f64(rx);
            machine.cores[core].busy_ns += dur.as_nanos();
            let max_ghz = machine.max_ghz;
            let freq = machine.cores[core].freq_ghz;
            machine.cores[core].dyn_energy_j +=
                dur.as_secs_f64() * machine.spec.power.dynamic_power_w(freq, max_ghz);
            self.events.schedule(
                self.now + dur,
                EventKind::NetDone {
                    machine: MachineId::from_raw(m as u32),
                    slot: slot as u32,
                },
            );
            if let Some(log) = self.span_log.as_deref_mut() {
                log.record(TraceEvent::NetRx {
                    machine: MachineId::from_raw(m as u32),
                    core: core as u32,
                    job: packet.job,
                    start: self.now,
                    end: self.now + dur,
                });
            }
        }
    }

    fn on_net_done(&mut self, machine: MachineId, slot: usize) {
        let m = machine.index();
        let packet = self.machines[m].net_slots[slot]
            .take()
            .expect("slot was in service");
        let core = self.machines[m].irq_cores[slot];
        self.machines[m].cores[core].busy = false;
        match packet.dest {
            PacketDest::Instance(inst) => self.deliver_to_instance(packet.job, inst),
            PacketDest::Client(_) => unreachable!("client deliveries bypass the net service"),
        }
        self.net_dispatch(m);
    }

    // ------------------------------------------------------------------
    // Instance side
    // ------------------------------------------------------------------

    /// A job (post-network) arrives at its target instance: handle reply
    /// connection release, fan-in merging, execution-path choice, thread
    /// routing, and enqueue into the first stage.
    fn deliver_to_instance(&mut self, job_id: JobId, inst_id: InstanceId) {
        let (rid, node, conn) = {
            let j = self.jobs.get(job_id).expect("delivered job exists");
            (j.request, j.node, j.conn)
        };
        let ty = self.requests.get(rid).expect("job's request exists").ty;

        // One pass over the node spec: every field the delivery path needs,
        // copied out under a single borrow instead of four indexed lookups.
        let (released_reply_conn, fan_in, required, exec_select, pin) = {
            let rt = &self.request_types[ty.index()];
            let spec = &rt.nodes[node.index()];
            let fan_in = rt.fan_in[node.index()].max(1);
            let exec_select = match spec.target {
                NodeTarget::Service { exec_path, .. } => exec_path,
                NodeTarget::ClientSink => unreachable!("sinks never execute on instances"),
            };
            (
                matches!(
                    spec.link,
                    LinkKind::Reply { .. } | LinkKind::ReplyToParent | LinkKind::ReplyVia { .. }
                ),
                fan_in,
                spec.fan_in_policy.required(fan_in),
                exec_select,
                spec.pin_thread_of,
            )
        };
        if released_reply_conn {
            if let Some(c) = conn {
                self.release_conn(c);
            }
        }

        // Fault: arrivals at a crashed instance die at the door (the reply
        // release above still happened — the *upstream* conn frees
        // normally).
        if self
            .fault
            .as_deref()
            .is_some_and(|f| f.instance_down[inst_id.index()])
        {
            self.kill_job_with(job_id, Some(released_reply_conn));
            return;
        }

        // Fan-in: the node fires once `required` copies have arrived — all
        // of them by default, fewer under a quorum/best-effort policy.
        // Copies arriving after the firing are absorbed.
        let (arrivals, fired) = {
            let req = self.requests.get_mut(rid).expect("job's request exists");
            let nr = &mut req.nodes[node.index()];
            nr.arrivals += 1;
            let arrivals = nr.arrivals;
            let fired = (arrivals as usize) == required;
            if (arrivals as usize) <= required {
                nr.entry_conn = conn;
            }
            if fired {
                nr.enter = Some(self.now);
                if required < fan_in {
                    req.early_fire = true;
                }
            } else {
                req.live_jobs -= 1;
            }
            (arrivals, fired)
        };
        if fan_in > 1 {
            if let Some(log) = self.span_log.as_deref_mut() {
                log.record(TraceEvent::FanIn {
                    request: rid,
                    node,
                    instance: Some(inst_id),
                    arrivals,
                    fan_in: fan_in as u32,
                    required: required as u32,
                    fired,
                    t: self.now,
                });
            }
        }
        // The hop that arrives is network time; when the firing fan-in copy
        // lands, the wait since the previous arrival was synchronization.
        let comp = if fired && fan_in > 1 {
            crate::telemetry::LatencyComponent::FanInSync
        } else {
            crate::telemetry::LatencyComponent::Network
        };
        self.attribute_latency(rid, comp, CritSiteRef::Instance(inst_id));
        if !fired {
            self.jobs.free(job_id);
            self.try_finalize(rid);
            return;
        }

        // Choose the intra-service execution path.
        let inst_service = self.instances[inst_id.index()].service;
        let exec_idx = match exec_select {
            PathSelect::Fixed { index } => index,
            PathSelect::Probabilistic => {
                self.services[inst_service.index()].choose_path(&mut self.rng_path)
            }
        };

        // Route to a worker thread / queue set.
        let shared = self.instances[inst_id.index()].shared_queues;
        let thread_idx = if let Some(pn) = pin {
            self.requests.get(rid).expect("request exists").nodes[pn.index()]
                .thread
                .expect("pinned node already executed")
                .index()
        } else if shared {
            0
        } else {
            conn.and_then(|c| self.conns[c.index()].thread_at(inst_id))
                .map(ThreadId::index)
                .unwrap_or(0)
        };
        let set = if shared { 0 } else { thread_idx };

        {
            let j = self.jobs.get_mut(job_id).expect("delivered job exists");
            j.exec_path = exec_idx;
            j.stage_cursor = 0;
            j.instance = Some(inst_id);
            j.state_since = self.now;
        }
        let first_stage = self.services[inst_service.index()].paths[exec_idx].stages[0].index();
        let conn_key = conn.expect("jobs always travel on a connection");
        self.instances[inst_id.index()].queue_sets[set].push(first_stage, job_id, conn_key);
        if let Some(log) = self.span_log.as_deref_mut() {
            log.record(TraceEvent::Enqueue {
                job: job_id,
                request: rid,
                node,
                instance: inst_id,
                stage: StageId::from_raw(first_stage as u32),
                t: self.now,
            });
        }

        // Unblock the pinned thread waiting for this reply, if any.
        if self.unblocks_thread[ty.index()][node.index()] {
            let inst = &mut self.instances[inst_id.index()];
            let th = &mut inst.threads[thread_idx];
            if th.block_depth > 0 {
                th.block_depth -= 1;
            }
            if th.is_idle() {
                inst.idle_mask |= 1u64 << thread_idx;
            }
        }

        self.dispatch_instance(inst_id);
    }

    /// Starts as much work as possible on an instance: idle threads pick the
    /// latest non-empty stage of their queue set and run a batch on a free
    /// core.
    fn dispatch_instance(&mut self, inst_id: InstanceId) {
        let i = inst_id.index();
        loop {
            // Every pass below ends with a full thread scan that finds
            // nothing once the queues drain; the per-set bitmasks make
            // "all empty" a handful of u64 loads, so check that first.
            if self.instances[i]
                .queue_sets
                .iter()
                .all(crate::queue::StageQueueSet::is_empty)
            {
                break;
            }
            // Find (thread, core, stage) without mutating.
            let candidate = {
                let inst = &self.instances[i];
                let machine = &self.machines[inst.machine.index()];
                let mut found = None;
                // Ascending-bit iteration visits threads in the same order
                // as the scan it replaces, so the candidate is unchanged.
                let mut idle = inst.idle_mask;
                while idle != 0 {
                    let t = idle.trailing_zeros() as usize;
                    idle &= idle - 1;
                    let th = &inst.threads[t];
                    debug_assert!(th.is_idle(), "idle_mask out of sync");
                    // Queue check first: it is one bitmask load, while the
                    // core checks touch the (cold) machine core table. A
                    // workless thread never reaches the core scan, and the
                    // (thread, core, stage) produced is unchanged: a
                    // candidate still needs idle + free core + work.
                    let Some(stage) = inst.queue_sets[th.queue_set].highest_nonempty() else {
                        continue;
                    };
                    let core_idx = match inst.exec {
                        ExecModel::Simple => {
                            let c = inst.cores[t];
                            if machine.cores[c].busy {
                                continue;
                            }
                            c
                        }
                        ExecModel::MultiThreaded { .. } => {
                            match inst.cores.iter().copied().find(|&c| !machine.cores[c].busy) {
                                Some(c) => c,
                                // No free cores: no thread can start.
                                None => break,
                            }
                        }
                    };
                    found = Some((t, core_idx, stage));
                    break;
                }
                found
            };
            let Some((t, core_idx, stage_idx)) = candidate else {
                break;
            };

            // Assemble the batch into a pooled scratch vector (returned to
            // the pool by `on_stage_done`) and start service.
            let mut jobs = self.batch_pool.pop().unwrap_or_default();
            let inst = &mut self.instances[i];
            let set_idx = inst.threads[t].queue_set;
            inst.queue_sets[set_idx].assemble_batch_into(stage_idx, &mut jobs);
            debug_assert!(!jobs.is_empty(), "candidate stage had work");
            let k = jobs.len();
            let m = inst.machine.index();
            // One fused pass per job: batch bytes for the service-time
            // model, dispatch bookkeeping, and queue-wait telemetry (two
            // extra arena walks before the fusion).
            let mut batch_bytes: f64 = 0.0;
            for &j in &jobs {
                let (rid, enqueued) = {
                    let job = self.jobs.get_mut(j).expect("queued job exists");
                    job.thread = Some(ThreadId::from_raw(t as u32));
                    job.instance = Some(inst_id);
                    let enqueued = job.state_since;
                    job.state_since = self.now;
                    (job.request, enqueued)
                };
                // Inlined attribute_latency: `inst` holds a borrow of
                // self.instances, so only disjoint fields are touchable here.
                if let Some(tel) = self.telemetry.as_deref_mut() {
                    if let Some(req) = self.requests.get_mut(rid) {
                        let dt = (self.now - req.mark).as_nanos();
                        req.mark = self.now;
                        req.components_ns
                            [crate::telemetry::LatencyComponent::QueueWait as usize] += dt;
                        if tel.cfg.critpath && dt > 0 {
                            req.crit.push(CritSeg {
                                site: CritSite::Stage(inst_id, stage_idx as u32),
                                kind: EdgeKind::QueueWait,
                                ns: dt,
                            });
                        }
                    }
                    if self.now >= tel.warmup_at {
                        tel.stage_queue_wait[i][stage_idx].record((self.now - enqueued).as_nanos());
                    }
                }
                if let Some(req) = self.requests.get(rid) {
                    batch_bytes += req.size_bytes;
                }
            }
            let core = &mut self.machines[m].cores[core_idx];
            let freq = core.freq_ghz;
            let ctx_ns = match inst.exec {
                ExecModel::MultiThreaded { ctx_switch_ns }
                    if core.last_thread != Some((i as u32, t as u32)) =>
                {
                    ctx_switch_ns
                }
                _ => 0,
            };
            let svc = &self.services[inst.service.index()];
            let secs =
                svc.stages[stage_idx]
                    .service
                    .sample(&mut self.rng_service, k, batch_bytes, freq);
            // Fault: a machine-slowdown window inflates service times.
            let secs = match self.fault.as_deref() {
                Some(f) => secs * f.slow_factor[m],
                None => secs,
            };
            let dur = SimDuration::from_secs_f64(secs) + SimDuration::from_nanos(ctx_ns);
            core.busy = true;
            core.last_thread = Some((i as u32, t as u32));
            core.busy_ns += dur.as_nanos();
            let machine = &mut self.machines[m];
            let max_ghz = machine.max_ghz;
            machine.cores[core_idx].dyn_energy_j +=
                dur.as_secs_f64() * machine.spec.power.dynamic_power_w(freq, max_ghz);
            // The batch's job list is only cloned if the log will actually
            // retain the record (`record_with` skips the closure once the
            // log is full), keeping tracing overhead flat.
            if let Some(log) = self.span_log.as_deref_mut() {
                let start = self.now;
                log.record_with(|| TraceEvent::BatchStart {
                    instance: inst_id,
                    machine: MachineId::from_raw(m as u32),
                    stage: StageId::from_raw(stage_idx as u32),
                    thread: ThreadId::from_raw(t as u32),
                    core: core_idx as u32,
                    freq_ghz: freq,
                    start,
                    end: start + dur,
                    jobs: jobs.clone(),
                });
            }
            inst.threads[t].running = Some(Batch {
                stage: StageId::from_raw(stage_idx as u32),
                jobs,
            });
            inst.threads[t].held_core = Some(core_idx);
            inst.idle_mask &= !(1u64 << t);
            inst.batches_dispatched += 1;
            inst.stage_agg[stage_idx].invocations += 1;
            inst.stage_agg[stage_idx].jobs += k as u64;
            inst.stage_agg[stage_idx].busy_ns += dur.as_nanos();
            if inst.profiling {
                inst.stage_samples[stage_idx].push(secs);
            }
            self.events.schedule(
                self.now + dur,
                EventKind::StageDone {
                    instance: inst_id,
                    thread: ThreadId::from_raw(t as u32),
                },
            );
        }
    }

    fn on_stage_done(&mut self, inst_id: InstanceId, thread: ThreadId) {
        let i = inst_id.index();
        let t = thread.index();
        let batch = self.instances[i].threads[t]
            .running
            .take()
            .expect("StageDone for running thread");
        let core_idx = self.instances[i].threads[t]
            .held_core
            .take()
            .expect("running thread holds a core");
        if self.instances[i].threads[t].block_depth == 0 {
            self.instances[i].idle_mask |= 1u64 << t;
        }
        let m = self.instances[i].machine.index();
        self.machines[m].cores[core_idx].busy = false;

        // Fault: the instance crashed while this batch was in service — the
        // work is lost. (Queued jobs were drained at crash time; arrivals
        // die at the door.)
        if self.fault.as_deref().is_some_and(|f| f.instance_down[i]) {
            for &job_id in &batch.jobs {
                self.kill_job(job_id);
            }
            self.recycle_batch(batch);
            return;
        }
        self.instances[i].jobs_processed += batch.jobs.len() as u64;

        let sid = self.instances[i].service.index();
        let set = self.instances[i].threads[t].queue_set;
        for &job_id in &batch.jobs {
            let (cursor, exec_path, conn, rid, node, svc_start) = {
                let job = self.jobs.get_mut(job_id).expect("batch job exists");
                debug_assert_eq!(
                    self.services[sid].paths[job.exec_path].stages[job.stage_cursor], batch.stage,
                    "job was batched at a stage it is not at"
                );
                job.stage_cursor += 1;
                let svc_start = job.state_since;
                job.state_since = self.now;
                (
                    job.stage_cursor,
                    job.exec_path,
                    job.conn,
                    job.request,
                    job.node,
                    svc_start,
                )
            };
            self.attribute_latency(
                rid,
                crate::telemetry::LatencyComponent::Service,
                CritSiteRef::Stage(inst_id, batch.stage.raw()),
            );
            if let Some(tel) = self.telemetry.as_deref_mut() {
                if self.now >= tel.warmup_at {
                    tel.stage_service[i][batch.stage.index()]
                        .record((self.now - svc_start).as_nanos());
                }
            }
            let stages = &self.services[sid].paths[exec_path].stages;
            if cursor < stages.len() {
                let next_stage_id = stages[cursor];
                let next_stage = next_stage_id.index();
                self.instances[i].queue_sets[set].push(
                    next_stage,
                    job_id,
                    conn.expect("executing job has a connection"),
                );
                if let Some(log) = self.span_log.as_deref_mut() {
                    log.record(TraceEvent::Enqueue {
                        job: job_id,
                        request: rid,
                        node,
                        instance: inst_id,
                        stage: next_stage_id,
                        t: self.now,
                    });
                }
            } else {
                self.complete_node(job_id, inst_id, thread);
            }
        }
        self.recycle_batch(batch);
        self.dispatch_instance(inst_id);
    }

    /// Returns a finished batch's job vector to the scratch pool.
    fn recycle_batch(&mut self, batch: Batch) {
        let mut jobs = batch.jobs;
        jobs.clear();
        self.batch_pool.push(jobs);
    }

    /// A job finished the last stage of its node: record residency, handle
    /// thread blocking, and fan out to children.
    fn complete_node(&mut self, job_id: JobId, inst_id: InstanceId, thread: ThreadId) {
        let job = self.jobs.free(job_id);
        let rid = job.request;
        let node = job.node;

        let ty = {
            let req = self.requests.get_mut(rid).expect("job's request exists");
            let nr = &mut req.nodes[node.index()];
            nr.exit = Some(self.now);
            nr.instance = Some(inst_id);
            nr.thread = Some(thread);
            if let Some(enter) = nr.enter {
                let residency = self.now - enter;
                // Interval samples only feed controller ticks; skip the
                // push when no controller will ever drain them.
                if !self.controllers.is_empty() {
                    self.interval_instance[inst_id.index()].push(residency.as_secs_f64());
                }
                self.instance_residency[inst_id.index()].record(self.now, residency);
            }
            req.live_jobs -= 1;
            req.ty
        };
        if let Some(log) = self.span_log.as_deref_mut() {
            log.record(TraceEvent::NodeDone {
                request: rid,
                job: job_id,
                node,
                instance: inst_id,
                thread,
                t: self.now,
            });
        }

        let spec = &self.request_types[ty.index()].nodes[node.index()];
        let n_children = spec.children.len();
        if spec.block_thread_until.is_some() {
            let inst = &mut self.instances[inst_id.index()];
            inst.threads[thread.index()].block_depth += 1;
            inst.idle_mask &= !(1u64 << thread.index());
        }

        // Iterate by index, re-reading the spec each round: `fan_out` needs
        // `&mut self`, and this keeps the hot path free of a children clone.
        for k in 0..n_children {
            let child = self.request_types[ty.index()].nodes[node.index()].children[k];
            self.fan_out(rid, ty, node, child, inst_id, thread, job.conn);
        }
        // A failed or early-resolved request may have just drained its last
        // live branch. No-op when faults and quorum policies are off.
        self.try_finalize(rid);
    }

    /// Sends one fan-out copy from `parent` (just completed on
    /// `sender_inst`/`sender_thread`, having entered on `parent_conn`) to
    /// `child`.
    #[allow(clippy::too_many_arguments)]
    fn fan_out(
        &mut self,
        rid: RequestId,
        ty: crate::ids::RequestTypeId,
        parent: PathNodeId,
        child: PathNodeId,
        sender_inst: InstanceId,
        sender_thread: ThreadId,
        parent_conn: Option<ConnectionId>,
    ) {
        let (fan_in, is_sink) = {
            let rt = &self.request_types[ty.index()];
            (
                rt.fan_in[child.index()].max(1),
                matches!(rt.nodes[child.index()].target, NodeTarget::ClientSink),
            )
        };

        match is_sink {
            true => {
                let required = self.request_types[ty.index()].nodes[child.index()]
                    .fan_in_policy
                    .required(fan_in);
                let (arrivals, fire) = {
                    let req = self.requests.get_mut(rid).expect("request exists");
                    let nr = &mut req.nodes[child.index()];
                    nr.arrivals += 1;
                    let fire = (nr.arrivals as usize) == required;
                    if fire {
                        req.sink_fired = true;
                        if required < fan_in {
                            req.early_fire = true;
                        }
                    }
                    (nr.arrivals, fire)
                };
                if fan_in > 1 {
                    if let Some(log) = self.span_log.as_deref_mut() {
                        log.record(TraceEvent::FanIn {
                            request: rid,
                            node: child,
                            instance: None,
                            arrivals,
                            fan_in: fan_in as u32,
                            required: required as u32,
                            fired: fire,
                            t: self.now,
                        });
                    }
                }
                if fire {
                    let m = self.instances[sender_inst.index()].machine.index();
                    let wire = self.machines[m]
                        .spec
                        .network
                        .wire_latency
                        .sample(&mut self.rng_network);
                    self.events.schedule(
                        self.now + SimDuration::from_secs_f64(wire),
                        EventKind::DeliverToClient { request: rid },
                    );
                }
            }
            false => {
                let dest = self.resolve_instance(rid, ty, child);
                let job = self.jobs.alloc(rid, child);
                self.requests
                    .get_mut(rid)
                    .expect("request exists")
                    .live_jobs += 1;
                // Reply links reuse the connection the referenced node
                // entered on; resolve it under shared borrows so the spec
                // never needs cloning.
                let reply_conn = {
                    let spec = &self.request_types[ty.index()].nodes[child.index()];
                    match &spec.link {
                        LinkKind::Request => None,
                        LinkKind::ReplyToParent => Some(parent_conn.unwrap_or_else(|| {
                            panic!("reply_to_parent from node {parent} without an entry connection")
                        })),
                        LinkKind::Reply { of } => Some(
                            self.requests.get(rid).expect("request exists").nodes[of.index()]
                                .entry_conn
                                .expect("reply references an entered node"),
                        ),
                        LinkKind::ReplyVia { entries } => {
                            let of = entries
                                .iter()
                                .find(|(p, _)| *p == parent)
                                .unwrap_or_else(|| {
                                    panic!("reply_via map has no entry for parent {parent}")
                                })
                                .1;
                            Some(
                                self.requests.get(rid).expect("request exists").nodes[of.index()]
                                    .entry_conn
                                    .expect("reply_via references an entered node"),
                            )
                        }
                    }
                };
                match reply_conn {
                    None => self.send_request_edge(job, sender_inst, sender_thread, dest),
                    Some(conn) => {
                        self.jobs.get_mut(job).expect("fresh job").conn = Some(conn);
                        self.send_job(job, Some(sender_inst), dest);
                    }
                }
            }
        }
    }

    fn resolve_instance(
        &mut self,
        rid: RequestId,
        ty: crate::ids::RequestTypeId,
        node: PathNodeId,
    ) -> InstanceId {
        let select = match &self.request_types[ty.index()].nodes[node.index()].target {
            NodeTarget::Service { instance, .. } => instance,
            NodeTarget::ClientSink => unreachable!("sinks have no instance to resolve"),
        };
        match select {
            InstanceSelect::Fixed { instance } => *instance,
            InstanceSelect::RoundRobin { instances } => {
                let ctr = &mut self.rr_instance[ty.index()][node.index()];
                let inst = instances[*ctr % instances.len()];
                *ctr += 1;
                inst
            }
            InstanceSelect::SameAsNode { node: n } => {
                self.requests.get(rid).expect("request exists").nodes[n.index()]
                    .instance
                    .expect("referenced node already executed")
            }
        }
    }

    /// Sends a request-edge copy: acquire a pooled connection (waiting if
    /// exhausted) or an ephemeral connection if no pool is configured.
    fn send_request_edge(
        &mut self,
        job: JobId,
        sender_inst: InstanceId,
        sender_thread: ThreadId,
        dest: InstanceId,
    ) {
        let key = (sender_inst.raw(), dest.raw());
        if let Some(&pool_id) = self.pool_lookup.get(&key) {
            let acquired = self.pools[pool_id.index()].acquire(sender_thread);
            match acquired {
                Some(conn) => {
                    self.conns[conn.index()].busy = true;
                    self.jobs.get_mut(job).expect("fresh job").conn = Some(conn);
                    if let Some(log) = self.span_log.as_deref_mut() {
                        log.record(TraceEvent::PoolAcquire {
                            pool: pool_id,
                            conn,
                            job,
                            t: self.now,
                        });
                    }
                    self.send_job(job, Some(sender_inst), dest);
                }
                None => {
                    self.pools[pool_id.index()].enqueue_waiter(job);
                    if let Some(log) = self.span_log.as_deref_mut() {
                        log.record(TraceEvent::PoolBlock {
                            pool: pool_id,
                            job,
                            t: self.now,
                        });
                    }
                }
            }
        } else {
            // Ephemeral unbounded connection; prefer one bound to the
            // sending thread so the reply returns to the right worker.
            let conn = self.acquire_ephemeral(sender_inst, sender_thread, dest);
            self.conns[conn.index()].busy = true;
            self.jobs.get_mut(job).expect("fresh job").conn = Some(conn);
            self.send_job(job, Some(sender_inst), dest);
        }
    }

    fn acquire_ephemeral(
        &mut self,
        sender_inst: InstanceId,
        sender_thread: ThreadId,
        dest: InstanceId,
    ) -> ConnectionId {
        let key = (sender_inst.raw(), dest.raw());
        if let Some(free) = self.eph_free.get_mut(&key) {
            if let Some(pos) = free.iter().position(|&c| {
                matches!(
                    self.conns[c.index()].up,
                    UpEndpoint::Instance { thread, .. } if thread == sender_thread
                )
            }) {
                return free.swap_remove(pos);
            }
            if let Some(c) = free.pop() {
                return c;
            }
        }
        // Create a new connection, binding the downstream thread round-robin.
        let down_inst = &mut self.instances[dest.index()];
        let n = down_inst.threads.len();
        let dt = down_inst.rr_thread;
        debug_assert!(dt < n, "rr_thread wraps in range");
        down_inst.rr_thread = if dt + 1 == n { 0 } else { dt + 1 };
        let id = ConnectionId::from_raw(self.conns.len() as u32);
        self.conns.push(Connection::new(
            UpEndpoint::Instance {
                instance: sender_inst,
                thread: sender_thread,
            },
            dest,
            ThreadId::from_raw(dt as u32),
        ));
        id
    }

    /// Releases a pooled or ephemeral connection after its reply was
    /// delivered. Pool releases may immediately hand the connection to a
    /// waiting job.
    fn release_conn(&mut self, conn_id: ConnectionId) {
        self.conns[conn_id.index()].busy = false;
        let pool = self.conns[conn_id.index()].pool;
        if let Some(pid) = pool {
            if let Some(log) = self.span_log.as_deref_mut() {
                log.record(TraceEvent::PoolRelease {
                    pool: pid,
                    conn: conn_id,
                    t: self.now,
                });
            }
            let released_thread = match self.conns[conn_id.index()].up {
                UpEndpoint::Instance { thread, .. } => thread,
                UpEndpoint::Client(_) => {
                    unreachable!("pooled connections originate from instances")
                }
            };
            if let Some((job, c)) = self.pools[pid.index()].release(conn_id, released_thread) {
                self.conns[c.index()].busy = true;
                let rid = {
                    let j = self.jobs.get_mut(job).expect("waiting job exists");
                    j.conn = Some(c);
                    j.request
                };
                // Time spent waiting for a pooled connection is blocking.
                self.attribute_latency(
                    rid,
                    crate::telemetry::LatencyComponent::Blocking,
                    CritSiteRef::Pool(pid),
                );
                if let Some(log) = self.span_log.as_deref_mut() {
                    log.record(TraceEvent::PoolGrant {
                        pool: pid,
                        conn: c,
                        job,
                        request: rid,
                        t: self.now,
                    });
                }
                let dest = self.pools[pid.index()].down_instance;
                let up = self.pools[pid.index()].up_instance;
                self.send_job(job, Some(up), dest);
            }
        } else {
            match self.conns[conn_id.index()].up {
                UpEndpoint::Instance { instance, .. } => {
                    let key = (
                        instance.raw(),
                        self.conns[conn_id.index()].down_instance.raw(),
                    );
                    self.eph_free.entry(key).or_default().push(conn_id);
                }
                UpEndpoint::Client(_) => {
                    // Client connections are released in on_deliver_to_client.
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection & resilience (see crate::fault)
    // ------------------------------------------------------------------

    /// Installs a fault plan: lowers names to ids (errors name `faults.json`
    /// and the offending key), seeds the dedicated `"fault"` RNG stream, and
    /// schedules every fault window's start/end transition.
    ///
    /// Call before [`Simulator::run_for`]. Installing an empty plan is valid
    /// and changes nothing observable: no extra events, no extra RNG draws.
    ///
    /// # Panics
    ///
    /// Panics if [`Simulator::enable_telemetry`] was already called: the
    /// telemetry layer fixes its series columns (including the fault-gated
    /// ones) at enable time, so faults must be installed first.
    pub fn install_faults(
        &mut self,
        plan: &crate::fault::FaultPlan,
    ) -> crate::error::SimResult<()> {
        assert!(
            self.telemetry.is_none(),
            "install_faults must be called before enable_telemetry"
        );
        let instance_names: Vec<String> = self.instances.iter().map(|i| i.name.clone()).collect();
        let machine_names: Vec<String> =
            self.machines.iter().map(|m| m.spec.name.clone()).collect();
        let client_names: Vec<String> = self.clients.iter().map(|c| c.spec.name.clone()).collect();
        let pool_lookup = &self.pool_lookup;
        let (schedule, client_policy) = crate::fault::lower_plan(
            plan,
            &instance_names,
            &machine_names,
            &client_names,
            |up, down| pool_lookup.get(&(up.raw(), down.raw())).copied(),
        )?;
        for (idx, f) in schedule.iter().enumerate() {
            self.events
                .schedule(f.at, EventKind::FaultStart { fault: idx as u32 });
            if let Some(until) = f.until {
                self.events
                    .schedule(until, EventKind::FaultEnd { fault: idx as u32 });
            }
        }
        let rng = crate::rng::RngFactory::new(self.cfg.seed).stream("fault", 0);
        self.fault = Some(Box::new(crate::fault::FaultState::new(
            rng,
            schedule,
            self.instances.len(),
            self.machines.len(),
            client_policy,
            plan.policy.network,
        )));
        Ok(())
    }

    fn on_fault_start(&mut self, idx: usize) {
        let fault = match self.fault.as_deref() {
            Some(f) => f.schedule[idx].fault,
            None => return,
        };
        match fault {
            crate::fault::LoweredFault::Crash { instance } => {
                let i = instance.index();
                let name = self.instances[i].name.clone();
                if let Some(f) = self.fault.as_deref_mut() {
                    f.instance_down[i] = true;
                    f.log(self.now, format!("instance {name} crashed"));
                }
                // Queued jobs die with the process. Batches already in
                // service die at their StageDone; arrivals die at the door.
                let mut doomed = Vec::new();
                for set in &mut self.instances[i].queue_sets {
                    doomed.extend(set.drain_all());
                }
                // Threads blocked on now-doomed replies restart unblocked.
                {
                    let inst = &mut self.instances[i];
                    for (t, th) in inst.threads.iter_mut().enumerate() {
                        th.block_depth = 0;
                        if th.running.is_none() {
                            inst.idle_mask |= 1u64 << t;
                        }
                    }
                }
                for job in doomed {
                    self.kill_job(job);
                }
            }
            crate::fault::LoweredFault::Slowdown { machine, factor } => {
                let m = machine.index();
                let name = self.machines[m].spec.name.clone();
                if let Some(f) = self.fault.as_deref_mut() {
                    f.slow_factor[m] = factor;
                    f.log(self.now, format!("machine {name} slowed down x{factor}"));
                }
            }
            crate::fault::LoweredFault::NetDegrade {
                machine,
                added_s,
                drop_prob,
            } => {
                let m = machine.index();
                let name = self.machines[m].spec.name.clone();
                if let Some(f) = self.fault.as_deref_mut() {
                    f.net_added_s[m] = added_s;
                    f.net_drop_p[m] = drop_prob;
                    f.log(
                        self.now,
                        format!("network to {name} degraded (+{added_s}s, drop p={drop_prob})"),
                    );
                }
            }
            crate::fault::LoweredFault::PoolLeak { pool, leak } => {
                let p = pool.index();
                let leaked = self.pools[p].leak(leak);
                let up = self.instances[self.pools[p].up_instance.index()]
                    .name
                    .clone();
                let down = self.instances[self.pools[p].down_instance.index()]
                    .name
                    .clone();
                if let Some(f) = self.fault.as_deref_mut() {
                    f.log(
                        self.now,
                        format!("pool {up}->{down} leaked {leaked} connections"),
                    );
                }
            }
        }
    }

    fn on_fault_end(&mut self, idx: usize) {
        let fault = match self.fault.as_deref() {
            Some(f) => f.schedule[idx].fault,
            None => return,
        };
        match fault {
            crate::fault::LoweredFault::Crash { instance } => {
                let i = instance.index();
                let name = self.instances[i].name.clone();
                if let Some(f) = self.fault.as_deref_mut() {
                    f.instance_down[i] = false;
                    f.log(self.now, format!("instance {name} restarted"));
                }
            }
            crate::fault::LoweredFault::Slowdown { machine, .. } => {
                let m = machine.index();
                let name = self.machines[m].spec.name.clone();
                if let Some(f) = self.fault.as_deref_mut() {
                    f.slow_factor[m] = 1.0;
                    f.log(self.now, format!("machine {name} back to full speed"));
                }
            }
            crate::fault::LoweredFault::NetDegrade { machine, .. } => {
                let m = machine.index();
                let name = self.machines[m].spec.name.clone();
                if let Some(f) = self.fault.as_deref_mut() {
                    f.net_added_s[m] = 0.0;
                    f.net_drop_p[m] = 0.0;
                    f.log(self.now, format!("network to {name} healthy"));
                }
            }
            crate::fault::LoweredFault::PoolLeak { pool, .. } => {
                let p = pool.index();
                let grants = self.pools[p].restore_leaked();
                let restored = grants.len() + self.pools[p].free_count();
                let up = self.instances[self.pools[p].up_instance.index()]
                    .name
                    .clone();
                let down = self.instances[self.pools[p].down_instance.index()]
                    .name
                    .clone();
                if let Some(f) = self.fault.as_deref_mut() {
                    f.log(
                        self.now,
                        format!("pool {up}->{down} restored ({restored} usable)"),
                    );
                }
                // Restored connections may go straight to waiting jobs,
                // mirroring the grant path of `release_conn`.
                let pid = crate::ids::PoolId::from_raw(p as u32);
                for (job, c) in grants {
                    self.conns[c.index()].busy = true;
                    let rid = {
                        let j = self.jobs.get_mut(job).expect("waiting job exists");
                        j.conn = Some(c);
                        j.request
                    };
                    self.attribute_latency(
                        rid,
                        crate::telemetry::LatencyComponent::Blocking,
                        CritSiteRef::Pool(pid),
                    );
                    if let Some(log) = self.span_log.as_deref_mut() {
                        log.record(TraceEvent::PoolGrant {
                            pool: pid,
                            conn: c,
                            job,
                            request: rid,
                            t: self.now,
                        });
                    }
                    let dest = self.pools[p].down_instance;
                    let upi = self.pools[p].up_instance;
                    self.send_job(job, Some(upi), dest);
                }
            }
        }
    }

    /// Kills one in-flight job (crash drain, crash arrival, dead batch, or
    /// exhausted retransmissions): frees it, releases any non-client
    /// connection it still holds, marks the request failed, and resolves the
    /// request as dropped once its last live branch is gone.
    ///
    /// `conn_released` overrides the inferred "does the job still hold its
    /// connection" decision; the crash-arrival door passes it because the
    /// reply release has just happened there.
    fn kill_job_with(&mut self, job_id: JobId, conn_released: Option<bool>) {
        let job = self.jobs.free(job_id);
        let rid = job.request;
        let already_released = conn_released.unwrap_or_else(|| {
            // A job releases its (reply-link) connection when it is
            // delivered; before delivery it still holds whatever it carries.
            job.instance.is_some()
                && self.requests.get(rid).is_some_and(|r| {
                    !matches!(
                        self.request_types[r.ty.index()].nodes[job.node.index()].link,
                        LinkKind::Request
                    )
                })
        });
        if let Some(c) = job.conn {
            if !already_released && !matches!(self.conns[c.index()].up, UpEndpoint::Client(_)) {
                self.release_conn(c);
            }
        }
        if let Some(f) = self.fault.as_deref_mut() {
            f.summary.jobs_killed += 1;
        }
        if let Some(log) = self.span_log.as_deref_mut() {
            log.record(TraceEvent::JobKilled {
                job: job_id,
                request: rid,
                t: self.now,
            });
        }
        if let Some(req) = self.requests.get_mut(rid) {
            req.live_jobs -= 1;
            req.failed = true;
        }
        self.try_finalize(rid);
    }

    fn kill_job(&mut self, job_id: JobId) {
        self.kill_job_with(job_id, None);
    }

    /// Checks a request for final disposal after a live-jobs decrement:
    /// frees a resolved request whose stragglers drained, or resolves a
    /// failed request as dropped once nothing of it is left in flight.
    /// No-op in fault-free runs (both flags stay false).
    fn try_finalize(&mut self, rid: RequestId) {
        let Some(req) = self.requests.get(rid) else {
            return;
        };
        if req.live_jobs > 0 {
            return;
        }
        if req.resolved {
            self.requests.free(rid);
            self.resolved_pending -= 1;
        } else if req.failed && !req.sink_fired {
            self.resolve_dropped(rid);
        }
    }

    /// Resolves a request whose last in-flight branch was killed: the
    /// client never gets a response. Releases the client connection (unless
    /// the timeout already did) and feeds the resilience policy.
    fn resolve_dropped(&mut self, rid: RequestId) {
        let (client, conn, conn_released, launched, timed_out, superseded, ty, attempt, size) = {
            let req = self.requests.get_mut(rid).expect("dropping request exists");
            req.resolved = true;
            (
                req.client,
                req.client_conn,
                req.conn_released,
                req.launched.is_some(),
                req.timed_out,
                req.superseded,
                req.ty,
                req.attempt,
                req.size_bytes,
            )
        };
        self.dropped += 1;
        if let Some(log) = self.span_log.as_deref_mut() {
            log.record(TraceEvent::RequestDropped {
                request: rid,
                t: self.now,
            });
        }
        self.requests.free(rid);
        if launched && !conn_released {
            let conn_id = conn.expect("launched request has a connection");
            let next = {
                let c = &mut self.conns[conn_id.index()];
                c.busy = false;
                c.pending.pop_front()
            };
            if let Some(next_rid) = next {
                self.launch_request(next_rid, conn_id);
            }
            self.closed_loop_reissue(client);
        }
        // A timed-out request already reported its failure at the deadline;
        // a superseded hedge copy must not trigger retries of its own.
        if !timed_out && !superseded {
            self.fault_on_failure(client, ty, attempt, size);
        }
    }

    /// Breaker admission + hedge arming at emission time. Returns `true`
    /// when the request was shed (the caller must not launch it).
    fn fault_admission(&mut self, rid: RequestId, client: ClientId) -> bool {
        let (open, hedge) = {
            let Some(f) = self.fault.as_deref() else {
                return false;
            };
            match &f.client_policy[client.index()] {
                Some(p) => (p.breaker_open(self.now), p.hedge_after),
                None => return false,
            }
        };
        if open {
            self.resolve_shed(rid, client);
            return true;
        }
        if let Some(h) = hedge {
            let attempt = self.requests.get(rid).map_or(0, |r| r.attempt);
            if attempt == 0 {
                self.events
                    .schedule(self.now + h, EventKind::HedgeFire { request: rid });
            }
        }
        false
    }

    /// Immediately resolves `rid` as shed: the breaker refused it, the
    /// client sees an instant degraded response, and no simulated resource
    /// is touched.
    fn resolve_shed(&mut self, rid: RequestId, client: ClientId) {
        self.shed += 1;
        self.degraded += 1;
        if let Some(log) = self.span_log.as_deref_mut() {
            log.record(TraceEvent::RequestShed {
                request: rid,
                t: self.now,
            });
        }
        self.requests.free(rid);
        // Closed-loop users observe the instant rejection and think again.
        self.closed_loop_reissue(client);
    }

    /// Breaker bookkeeping on a client-observed success.
    fn fault_on_success(&mut self, client: ClientId) {
        if let Some(f) = self.fault.as_deref_mut() {
            if let Some(p) = f.client_policy[client.index()].as_mut() {
                p.on_success();
            }
        }
    }

    /// A client-observed failure (timeout or drop): feeds the breaker and
    /// schedules a retry when the policy allows one.
    fn fault_on_failure(
        &mut self,
        client: ClientId,
        ty: crate::ids::RequestTypeId,
        attempt: u32,
        size_bytes: f64,
    ) {
        let delay = {
            let Some(f) = self.fault.as_deref_mut() else {
                return;
            };
            let crate::fault::FaultState {
                client_policy, rng, ..
            } = f;
            let Some(p) = client_policy[client.index()].as_mut() else {
                return;
            };
            p.on_failure(self.now, attempt, rng)
        };
        if let Some(delay) = delay {
            self.events.schedule(
                self.now + delay,
                EventKind::RetryEmit(Box::new(crate::event::RetrySpec {
                    client,
                    request_type: ty,
                    attempt: attempt + 1,
                    size_bytes,
                })),
            );
        }
    }

    /// Handles [`EventKind::RetryEmit`]: re-emits a failed operation as a
    /// fresh request — same type, same payload size, bumped attempt count.
    fn on_retry_emit(
        &mut self,
        client: ClientId,
        ty: crate::ids::RequestTypeId,
        attempt: u32,
        size_bytes: f64,
    ) {
        let c = client.index();
        let node_count = self.request_types[ty.index()].nodes.len();
        let rid = self.requests.alloc(ty, client, self.now, node_count);
        {
            let req = self.requests.get_mut(rid).expect("fresh request");
            req.size_bytes = size_bytes;
            req.attempt = attempt;
        }
        self.generated += 1;
        self.retried += 1;
        if let Some(log) = self.span_log.as_deref_mut() {
            log.record(TraceEvent::RequestEmitted {
                request: rid,
                request_type: ty,
                client,
                t: self.now,
            });
            log.record(TraceEvent::RequestRetry {
                request: rid,
                attempt,
                t: self.now,
            });
        }
        // The breaker may have opened between scheduling and firing.
        if self.fault_admission(rid, client) {
            return;
        }
        if let Some(timeout_s) = self.clients[c].spec.timeout_s {
            self.events.schedule(
                self.now + SimDuration::from_secs_f64(timeout_s),
                EventKind::RequestTimeout { request: rid },
            );
        }
        let n_conns = self.clients[c].conns.len();
        let ci = self.clients[c].next_conn;
        // Wrap without the integer divide; `next_conn` stays in range.
        self.clients[c].next_conn = if ci + 1 == n_conns { 0 } else { ci + 1 };
        let conn_id = self.clients[c].conns[ci];
        self.requests
            .get_mut(rid)
            .expect("fresh request")
            .client_conn = Some(conn_id);
        if self.conns[conn_id.index()].busy {
            self.conns[conn_id.index()].pending.push_back(rid);
        } else {
            self.launch_request(rid, conn_id);
        }
    }

    /// Handles [`EventKind::HedgeFire`]: the original is still outstanding
    /// past the hedge deadline, so a duplicate is issued; the first delivery
    /// wins and the loser is marked superseded.
    fn on_hedge_fire(&mut self, rid: RequestId) {
        let (client, ty, size, attempt) = {
            let Some(req) = self.requests.get(rid) else {
                return; // already completed or dropped
            };
            if req.timed_out || req.resolved || req.hedge_twin.is_some() {
                return;
            }
            (req.client, req.ty, req.size_bytes, req.attempt)
        };
        let c = client.index();
        let node_count = self.request_types[ty.index()].nodes.len();
        let twin = self.requests.alloc(ty, client, self.now, node_count);
        {
            let t = self.requests.get_mut(twin).expect("fresh request");
            t.size_bytes = size;
            t.attempt = attempt;
            t.hedge_twin = Some(rid);
        }
        self.requests
            .get_mut(rid)
            .expect("hedged request exists")
            .hedge_twin = Some(twin);
        self.generated += 1;
        if let Some(f) = self.fault.as_deref_mut() {
            f.summary.hedged += 1;
        }
        if let Some(log) = self.span_log.as_deref_mut() {
            log.record(TraceEvent::RequestEmitted {
                request: twin,
                request_type: ty,
                client,
                t: self.now,
            });
        }
        if let Some(timeout_s) = self.clients[c].spec.timeout_s {
            self.events.schedule(
                self.now + SimDuration::from_secs_f64(timeout_s),
                EventKind::RequestTimeout { request: twin },
            );
        }
        let n_conns = self.clients[c].conns.len();
        let ci = self.clients[c].next_conn;
        // Wrap without the integer divide; `next_conn` stays in range.
        self.clients[c].next_conn = if ci + 1 == n_conns { 0 } else { ci + 1 };
        let conn_id = self.clients[c].conns[ci];
        self.requests
            .get_mut(twin)
            .expect("fresh request")
            .client_conn = Some(conn_id);
        if self.conns[conn_id.index()].busy {
            self.conns[conn_id.index()].pending.push_back(twin);
        } else {
            self.launch_request(twin, conn_id);
        }
    }

    // ------------------------------------------------------------------
    // Controllers
    // ------------------------------------------------------------------

    fn on_controller_tick(&mut self, id: ControllerId) {
        let mut ctrl = self.controllers[id.index()]
            .take()
            .expect("controller registered");
        let stats = TickStats {
            end_to_end: LatencySummary::from_samples(&self.interval_e2e),
            per_instance: self
                .interval_instance
                .iter()
                .map(|v| LatencySummary::from_samples(v))
                .collect(),
        };
        self.interval_e2e.clear();
        for v in &mut self.interval_instance {
            v.clear();
        }
        let (actions, next) = ctrl.tick(self.now, &stats);
        self.controllers[id.index()] = Some(ctrl);
        for action in actions {
            match action {
                ControlAction::SetInstanceFreq { instance, freq_ghz } => {
                    self.set_instance_freq(instance, freq_ghz);
                }
            }
        }
        self.events.schedule(
            self.now + next,
            EventKind::ControllerTick { controller: id },
        );
    }
}
