//! Workload clients (`client.json`): open-loop and closed-loop load
//! generation, request mixes, and time-varying (diurnal) rate schedules.
//!
//! The paper's validation uses an open-loop generator (a modified `wrk2`)
//! with exponentially distributed inter-arrival times, a fixed number of
//! connections, and — for the power-management study — a diurnal load
//! pattern (Fig. 15).

use crate::dist::Distribution;
use crate::ids::RequestTypeId;
use crate::rng::RngFactory;
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Label of the dedicated [`RngFactory`] stream the *stateful* (bursty)
/// arrival processes draw from, one sub-stream per client. The stateless
/// processes keep drawing from the engine's shared `"arrival"` stream, so
/// adding a bursty client to a scenario never perturbs the draws — and
/// therefore the byte-level artifacts — of existing scenarios.
pub const BURST_STREAM: &str = "burst";

/// A piecewise-constant request-rate schedule (QPS over time).
///
/// # Examples
///
/// ```
/// use uqsim_core::client::RateSchedule;
/// use uqsim_core::time::SimTime;
///
/// let sched = RateSchedule::diurnal(1_000.0, 10_000.0, 60.0, 6);
/// assert!(sched.rate_at(SimTime::ZERO) >= 1_000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSchedule {
    /// `(start_time_seconds, rate_qps)` segments, ascending by time. The
    /// first segment must start at 0; the last lasts forever.
    pub segments: Vec<(f64, f64)>,
}

impl RateSchedule {
    /// A constant rate.
    pub fn constant(qps: f64) -> Self {
        RateSchedule {
            segments: vec![(0.0, qps)],
        }
    }

    /// A sinusoid-sampled diurnal pattern between `min_qps` and `max_qps`:
    /// one full period lasts `period_s` seconds, discretized into `steps`
    /// piecewise-constant segments per period (repeating indefinitely is
    /// represented by two full periods; extend as needed).
    pub fn diurnal(min_qps: f64, max_qps: f64, period_s: f64, steps: usize) -> Self {
        assert!(steps >= 2, "diurnal needs at least 2 steps");
        let mut segments = Vec::new();
        // Two periods so minute-scale power experiments see the full swing
        // more than once.
        for k in 0..(2 * steps) {
            let t = k as f64 * period_s / steps as f64;
            let phase = 2.0 * std::f64::consts::PI * (k as f64 % steps as f64) / steps as f64;
            // Start at the trough, rise to the peak mid-period.
            let level = min_qps + (max_qps - min_qps) * 0.5 * (1.0 - phase.cos());
            segments.push((t, level));
        }
        RateSchedule { segments }
    }

    /// Validates the schedule.
    ///
    /// # Errors
    ///
    /// Returns a message if empty, rates are non-positive, or times are not
    /// ascending starting at 0.
    pub fn validate(&self) -> Result<(), String> {
        if self.segments.is_empty() {
            return Err("rate schedule is empty".into());
        }
        if self.segments[0].0 != 0.0 {
            return Err("rate schedule must start at t=0".into());
        }
        let mut prev = -1.0;
        for &(t, r) in &self.segments {
            if !(t.is_finite() && t > prev) {
                return Err(format!("segment times must be ascending, got {t}"));
            }
            if !(r.is_finite() && r > 0.0) {
                return Err(format!("rate must be positive, got {r}"));
            }
            prev = t;
        }
        Ok(())
    }

    /// The rate in effect at `time`.
    pub fn rate_at(&self, time: SimTime) -> f64 {
        let t = time.as_secs_f64();
        let mut rate = self.segments[0].1;
        for &(start, r) in &self.segments {
            if start <= t {
                rate = r;
            } else {
                break;
            }
        }
        rate
    }

    /// The peak rate across all segments.
    pub fn peak(&self) -> f64 {
        self.segments.iter().map(|s| s.1).fold(0.0, f64::max)
    }
}

/// The arrival process of an open-loop client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential gaps with mean `1/rate(t)`.
    Poisson {
        /// The (possibly time-varying) rate.
        schedule: RateSchedule,
    },
    /// Deterministic arrivals at exactly `rate(t)` QPS.
    Uniform {
        /// The (possibly time-varying) rate.
        schedule: RateSchedule,
    },
    /// Replay of a recorded arrival trace: absolute timestamps in seconds,
    /// ascending. Generation stops after the last timestamp.
    Trace {
        /// Arrival instants, seconds since simulation start.
        timestamps: Vec<f64>,
        /// Optional per-arrival request-type *names*, parallel to
        /// `timestamps`. When present, arrival `i` issues `types[i]`
        /// (resolved against `graph.json` at build time) instead of a
        /// random draw from the client's mix; plain timestamp traces keep
        /// the mix draw and stay byte-identical to pre-typed goldens.
        #[serde(default, skip_serializing_if = "Vec::is_empty")]
        types: Vec<String>,
    },
    /// Markov-modulated Poisson process (MMPP): a continuous-time chain
    /// cycles through `states` (exponential dwell times), and while in
    /// state `i` arrivals are Poisson at `states[i].rate_qps`. The classic
    /// bursty-traffic model — an ON/OFF interrupted Poisson process is the
    /// two-state special case. Stateful: the engine keeps per-client
    /// [`ArrivalRt`] state seeded from the dedicated [`BURST_STREAM`].
    Mmpp {
        /// The modulating chain, visited cyclically starting at state 0.
        states: Vec<MmppState>,
    },
    /// A flash crowd: Poisson arrivals whose rate is `base` multiplied by
    /// a deterministic spike envelope (one factor per [`FlashSpike`],
    /// multiplied together). Sampled exactly by thinning against the peak
    /// rate, so no discretization error.
    FlashCrowd {
        /// The baseline (possibly diurnal) rate.
        base: RateSchedule,
        /// Deterministic spikes layered on top of the baseline.
        spikes: Vec<FlashSpike>,
    },
    /// Correlated per-user sessions: session *starts* are Poisson at
    /// `session_rate_qps`, each session issues a random number of requests
    /// (`requests_per_session`, rounded to an integer ≥ 1) separated by
    /// `think_time` gaps. Sessions are replayed back-to-back on the
    /// client's open-loop clock (the next session's start gap begins when
    /// the previous session's last request has been issued), which keeps
    /// generation single-cursor while preserving intra-session burstiness.
    Sessions {
        /// Mean session starts per second.
        session_rate_qps: f64,
        /// Requests per session; samples are rounded and clamped to ≥ 1.
        requests_per_session: Distribution,
        /// Gap between consecutive requests of one session, seconds.
        think_time: Distribution,
    },
}

/// One state of an MMPP modulating chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MmppState {
    /// Poisson arrival rate while in this state, QPS. May be 0 (a silent
    /// OFF state), but at least one state of a chain must be positive.
    pub rate_qps: f64,
    /// Mean of the exponential dwell time in this state, seconds.
    pub mean_dwell_s: f64,
}

/// One deterministic spike of a [`ArrivalProcess::FlashCrowd`] envelope:
/// the rate multiplier ramps linearly 1 → `peak_multiplier` over `ramp_s`,
/// holds for `hold_s`, then decays linearly back to 1 over `decay_s`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashSpike {
    /// Spike onset, seconds since simulation start.
    pub at_s: f64,
    /// Peak rate multiplier (≥ 1; 1 is a no-op).
    pub peak_multiplier: f64,
    /// Linear ramp-up duration, seconds.
    pub ramp_s: f64,
    /// Plateau duration at the peak, seconds.
    pub hold_s: f64,
    /// Linear decay duration, seconds.
    pub decay_s: f64,
}

impl FlashSpike {
    /// The rate multiplier this spike contributes at absolute time `t_s`.
    pub fn multiplier_at(&self, t_s: f64) -> f64 {
        let mut rel = t_s - self.at_s;
        if rel < 0.0 {
            return 1.0;
        }
        let peak = self.peak_multiplier;
        if rel < self.ramp_s {
            return 1.0 + (peak - 1.0) * rel / self.ramp_s;
        }
        rel -= self.ramp_s;
        if rel < self.hold_s {
            return peak;
        }
        rel -= self.hold_s;
        if rel < self.decay_s {
            return peak - (peak - 1.0) * rel / self.decay_s;
        }
        1.0
    }
}

impl ArrivalProcess {
    /// Poisson arrivals at a constant rate.
    pub fn poisson(qps: f64) -> Self {
        ArrivalProcess::Poisson {
            schedule: RateSchedule::constant(qps),
        }
    }

    /// An untyped arrival trace.
    pub fn trace(timestamps: Vec<f64>) -> Self {
        ArrivalProcess::Trace {
            timestamps,
            types: Vec::new(),
        }
    }

    /// An MMPP over the given modulating states (visited cyclically).
    pub fn mmpp(states: Vec<MmppState>) -> Self {
        ArrivalProcess::Mmpp { states }
    }

    /// A two-state ON/OFF interrupted Poisson process: bursts at
    /// `on_qps` for a mean of `mean_on_s`, silent for a mean of
    /// `mean_off_s`.
    pub fn on_off(on_qps: f64, mean_on_s: f64, mean_off_s: f64) -> Self {
        ArrivalProcess::Mmpp {
            states: vec![
                MmppState {
                    rate_qps: on_qps,
                    mean_dwell_s: mean_on_s,
                },
                MmppState {
                    rate_qps: 0.0,
                    mean_dwell_s: mean_off_s,
                },
            ],
        }
    }

    /// A flash crowd over a constant baseline.
    pub fn flash_crowd(base_qps: f64, spikes: Vec<FlashSpike>) -> Self {
        ArrivalProcess::FlashCrowd {
            base: RateSchedule::constant(base_qps),
            spikes,
        }
    }

    /// Correlated user sessions (see [`ArrivalProcess::Sessions`]).
    pub fn sessions(
        session_rate_qps: f64,
        requests_per_session: Distribution,
        think_time: Distribution,
    ) -> Self {
        ArrivalProcess::Sessions {
            session_rate_qps,
            requests_per_session,
            think_time,
        }
    }

    /// The long-run mean arrival rate in QPS, where one is defined: the
    /// MMPP stationary rate (dwell-weighted state rates) and the sessions
    /// rate. Under the back-to-back session model a cycle of `k` requests
    /// lasts `1/session_rate + (k-1)·E[think]` on average, so the rate is
    /// `k` over that (using `E[requests]` for `k`, a tight approximation
    /// of the rounded-and-clamped sample mean). `None` for schedule-driven
    /// and trace processes.
    pub fn mean_rate_qps(&self) -> Option<f64> {
        match self {
            ArrivalProcess::Mmpp { states } => {
                let dwell: f64 = states.iter().map(|s| s.mean_dwell_s).sum();
                let weighted: f64 = states.iter().map(|s| s.rate_qps * s.mean_dwell_s).sum();
                Some(weighted / dwell)
            }
            ArrivalProcess::Sessions {
                session_rate_qps,
                requests_per_session,
                think_time,
            } => {
                let k = requests_per_session.mean().max(1.0);
                let cycle = 1.0 / session_rate_qps + (k - 1.0) * think_time.mean();
                Some(k / cycle)
            }
            _ => None,
        }
    }

    /// Samples the gap until the next arrival after `now`.
    ///
    /// Equivalent to [`ArrivalProcess::gap_after`] with `issued = 0`; only
    /// correct for the stochastic processes, not for traces.
    pub fn next_gap<R: Rng + ?Sized>(&self, now: SimTime, rng: &mut R) -> SimDuration {
        self.gap_after(0, now, rng).unwrap_or(SimDuration::MAX)
    }

    /// The time of the first arrival (counted from simulation start), or
    /// `None` for an empty trace.
    pub fn first_arrival<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<SimDuration> {
        match self {
            ArrivalProcess::Trace { timestamps, .. } => {
                timestamps.first().map(|&t| SimDuration::from_secs_f64(t))
            }
            _ => self.gap_after(0, SimTime::ZERO, rng),
        }
    }

    /// The gap from arrival number `issued` (0-based, just generated at
    /// `now`) to the next one; `None` when the workload is exhausted
    /// (trace replay only).
    ///
    /// For the stateful processes (MMPP, flash crowd, sessions) this is a
    /// *stateless approximation* — a Poisson draw at the process's current
    /// or stationary mean rate. The engine drives those through
    /// [`ArrivalProcess::gap_rt`] with per-client [`ArrivalRt`] state,
    /// which is exact.
    pub fn gap_after<R: Rng + ?Sized>(
        &self,
        issued: u64,
        now: SimTime,
        rng: &mut R,
    ) -> Option<SimDuration> {
        match self {
            ArrivalProcess::Poisson { schedule } => {
                let rate = schedule.rate_at(now);
                Some(SimDuration::from_secs_f64(crate::rng::sample_exponential(
                    rng,
                    1.0 / rate,
                )))
            }
            ArrivalProcess::Uniform { schedule } => {
                Some(SimDuration::from_secs_f64(1.0 / schedule.rate_at(now)))
            }
            ArrivalProcess::Trace { timestamps, .. } => {
                let cur = *timestamps.get(issued as usize)?;
                let next = *timestamps.get(issued as usize + 1)?;
                Some(SimDuration::from_secs_f64(next - cur))
            }
            ArrivalProcess::Mmpp { .. } | ArrivalProcess::Sessions { .. } => {
                let rate = self.mean_rate_qps().expect("stationary rate");
                Some(SimDuration::from_secs_f64(crate::rng::sample_exponential(
                    rng,
                    1.0 / rate,
                )))
            }
            ArrivalProcess::FlashCrowd { base, spikes } => {
                let rate = flash_rate(base, spikes, now.as_secs_f64());
                Some(SimDuration::from_secs_f64(crate::rng::sample_exponential(
                    rng,
                    1.0 / rate,
                )))
            }
        }
    }

    /// The underlying schedule, for rate-based processes (a flash crowd
    /// reports its baseline).
    pub fn schedule(&self) -> Option<&RateSchedule> {
        match self {
            ArrivalProcess::Poisson { schedule } | ArrivalProcess::Uniform { schedule } => {
                Some(schedule)
            }
            ArrivalProcess::FlashCrowd { base, .. } => Some(base),
            ArrivalProcess::Trace { .. }
            | ArrivalProcess::Mmpp { .. }
            | ArrivalProcess::Sessions { .. } => None,
        }
    }

    /// Validates the process.
    ///
    /// # Errors
    ///
    /// Returns a message for invalid schedules, non-ascending traces,
    /// malformed MMPP chains, spikes, or session parameters.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ArrivalProcess::Poisson { schedule } | ArrivalProcess::Uniform { schedule } => {
                schedule.validate()
            }
            ArrivalProcess::Trace { timestamps, types } => {
                if timestamps.is_empty() {
                    return Err("arrival trace is empty".into());
                }
                let mut prev = -1.0;
                for &t in timestamps {
                    if !(t.is_finite() && t >= 0.0 && t >= prev) {
                        return Err(format!("trace timestamps must be ascending, got {t}"));
                    }
                    prev = t;
                }
                if !types.is_empty() && types.len() != timestamps.len() {
                    return Err(format!(
                        "typed trace has {} types for {} timestamps",
                        types.len(),
                        timestamps.len()
                    ));
                }
                Ok(())
            }
            ArrivalProcess::Mmpp { states } => {
                if states.is_empty() {
                    return Err("mmpp has no states".into());
                }
                for (i, s) in states.iter().enumerate() {
                    if !(s.rate_qps.is_finite() && s.rate_qps >= 0.0) {
                        return Err(format!("mmpp state {i}: bad rate {}", s.rate_qps));
                    }
                    if !(s.mean_dwell_s.is_finite() && s.mean_dwell_s > 0.0) {
                        return Err(format!("mmpp state {i}: bad dwell {}", s.mean_dwell_s));
                    }
                }
                if !states.iter().any(|s| s.rate_qps > 0.0) {
                    return Err("mmpp needs at least one state with positive rate".into());
                }
                Ok(())
            }
            ArrivalProcess::FlashCrowd { base, spikes } => {
                base.validate()?;
                for (i, s) in spikes.iter().enumerate() {
                    if !(s.at_s.is_finite() && s.at_s >= 0.0) {
                        return Err(format!("spike {i}: bad onset {}", s.at_s));
                    }
                    if !(s.peak_multiplier.is_finite() && s.peak_multiplier >= 1.0) {
                        return Err(format!(
                            "spike {i}: peak multiplier must be >= 1, got {}",
                            s.peak_multiplier
                        ));
                    }
                    for (what, v) in [("ramp", s.ramp_s), ("hold", s.hold_s), ("decay", s.decay_s)]
                    {
                        if !(v.is_finite() && v >= 0.0) {
                            return Err(format!("spike {i}: bad {what} {v}"));
                        }
                    }
                }
                Ok(())
            }
            ArrivalProcess::Sessions {
                session_rate_qps,
                requests_per_session,
                think_time,
            } => {
                if !(session_rate_qps.is_finite() && *session_rate_qps > 0.0) {
                    return Err(format!(
                        "session rate must be positive, got {session_rate_qps}"
                    ));
                }
                requests_per_session
                    .validate()
                    .map_err(|e| format!("requests per session: {e}"))?;
                think_time
                    .validate()
                    .map_err(|e| format!("think time: {e}"))
            }
        }
    }

    /// Builds the per-client runtime state for this process. Stateful
    /// processes get their own [`SmallRng`] from the [`BURST_STREAM`]
    /// sub-stream `client_index`; stateless processes carry none and keep
    /// drawing from the engine's shared arrival stream.
    pub fn runtime(&self, factory: &RngFactory, client_index: u64) -> ArrivalRt {
        let kind = match self {
            ArrivalProcess::Mmpp { states } => {
                let mut rng = factory.stream(BURST_STREAM, client_index);
                let dwell = crate::rng::sample_exponential(&mut rng, states[0].mean_dwell_s);
                ArrivalRtKind::Mmpp {
                    rng,
                    state: 0,
                    next_transition: SimTime::ZERO + SimDuration::from_secs_f64(dwell),
                    mark: SimTime::ZERO,
                    time_in_state: vec![0.0; states.len()],
                    arrivals_in_state: vec![0; states.len()],
                }
            }
            ArrivalProcess::FlashCrowd { .. } => ArrivalRtKind::FlashCrowd {
                rng: factory.stream(BURST_STREAM, client_index),
            },
            ArrivalProcess::Sessions { .. } => ArrivalRtKind::Sessions {
                rng: factory.stream(BURST_STREAM, client_index),
                remaining: 0,
            },
            _ => ArrivalRtKind::Stateless,
        };
        ArrivalRt {
            kind,
            trace_types: Vec::new(),
        }
    }

    /// Stateful variant of [`ArrivalProcess::first_arrival`]: the time of
    /// the first arrival, drawing bursty processes through `rt`.
    pub fn first_arrival_rt<R: Rng + ?Sized>(
        &self,
        rt: &mut ArrivalRt,
        shared: &mut R,
    ) -> Option<SimDuration> {
        match self {
            ArrivalProcess::Mmpp { .. }
            | ArrivalProcess::FlashCrowd { .. }
            | ArrivalProcess::Sessions { .. } => self.gap_rt(rt, 0, SimTime::ZERO, shared),
            _ => self.first_arrival(shared),
        }
    }

    /// Stateful variant of [`ArrivalProcess::gap_after`]: exact for the
    /// bursty processes (which mutate and draw from `rt`), and *bit-for-bit
    /// identical* to `gap_after` on the shared stream for the stateless
    /// ones — existing scenarios keep their golden artifacts.
    pub fn gap_rt<R: Rng + ?Sized>(
        &self,
        rt: &mut ArrivalRt,
        issued: u64,
        now: SimTime,
        shared: &mut R,
    ) -> Option<SimDuration> {
        match (self, &mut rt.kind) {
            (
                ArrivalProcess::Mmpp { states },
                ArrivalRtKind::Mmpp {
                    rng,
                    state,
                    next_transition,
                    mark,
                    time_in_state,
                    arrivals_in_state,
                },
            ) => Some(mmpp_gap(
                states,
                rng,
                state,
                next_transition,
                mark,
                time_in_state,
                arrivals_in_state,
                now,
            )),
            (ArrivalProcess::FlashCrowd { base, spikes }, ArrivalRtKind::FlashCrowd { rng }) => {
                Some(flash_gap(base, spikes, now, rng))
            }
            (
                ArrivalProcess::Sessions {
                    session_rate_qps,
                    requests_per_session,
                    think_time,
                },
                ArrivalRtKind::Sessions { rng, remaining },
            ) => {
                if *remaining > 0 {
                    *remaining -= 1;
                    Some(SimDuration::from_secs_f64(think_time.sample(rng).max(0.0)))
                } else {
                    let gap = crate::rng::sample_exponential(rng, 1.0 / session_rate_qps);
                    let k = requests_per_session.sample(rng).round().max(1.0) as u64;
                    *remaining = k - 1;
                    Some(SimDuration::from_secs_f64(gap))
                }
            }
            _ => self.gap_after(issued, now, shared),
        }
    }
}

/// Per-client runtime state for arrival generation: the mutable side of an
/// [`ArrivalProcess`] (modulating-chain position, session cursor, the
/// dedicated RNG) plus the resolved request types of a typed trace.
#[derive(Debug, Clone)]
pub struct ArrivalRt {
    kind: ArrivalRtKind,
    /// Resolved request-type ids for typed trace replay, parallel to the
    /// trace timestamps; empty for untyped traces and all other processes.
    pub(crate) trace_types: Vec<RequestTypeId>,
}

#[derive(Debug, Clone)]
enum ArrivalRtKind {
    /// Poisson / Uniform / Trace: all state lives in the spec + `issued`.
    Stateless,
    Mmpp {
        rng: SmallRng,
        /// Current modulating-chain state index.
        state: usize,
        /// Absolute time of the next chain transition.
        next_transition: SimTime,
        /// Accounting frontier: the last arrival or transition processed.
        mark: SimTime,
        /// Simulated seconds spent in each state (diagnostics).
        time_in_state: Vec<f64>,
        /// Arrivals generated in each state (diagnostics).
        arrivals_in_state: Vec<u64>,
    },
    FlashCrowd {
        rng: SmallRng,
    },
    Sessions {
        rng: SmallRng,
        /// Requests still to issue in the current session (excluding the
        /// one just issued).
        remaining: u64,
    },
}

impl ArrivalRt {
    /// State for a stateless process (Poisson / Uniform / untyped trace).
    pub fn stateless() -> Self {
        ArrivalRt {
            kind: ArrivalRtKind::Stateless,
            trace_types: Vec::new(),
        }
    }

    /// The resolved request type of trace arrival `issued`, for typed
    /// trace replay; `None` everywhere else (callers fall back to the
    /// client's request mix).
    pub fn trace_type(&self, issued: u64) -> Option<RequestTypeId> {
        self.trace_types.get(issued as usize).copied()
    }

    /// MMPP occupancy diagnostics: `(seconds, arrivals)` per chain state,
    /// accumulated since simulation start. `None` for non-MMPP processes.
    pub fn mmpp_occupancy(&self) -> Option<(&[f64], &[u64])> {
        match &self.kind {
            ArrivalRtKind::Mmpp {
                time_in_state,
                arrivals_in_state,
                ..
            } => Some((time_in_state, arrivals_in_state)),
            _ => None,
        }
    }
}

/// Exact MMPP gap sampling via the memorylessness of both clocks: sample a
/// candidate arrival at the current state's rate; if it lands before the
/// next chain transition it *is* the next arrival, otherwise advance to the
/// transition, switch states, and resample. Silent (rate-0) states skip
/// straight to their transition.
#[allow(clippy::too_many_arguments)]
fn mmpp_gap(
    states: &[MmppState],
    rng: &mut SmallRng,
    state: &mut usize,
    next_transition: &mut SimTime,
    mark: &mut SimTime,
    time_in_state: &mut [f64],
    arrivals_in_state: &mut [u64],
    now: SimTime,
) -> SimDuration {
    loop {
        let s = *state;
        let rate = states[s].rate_qps;
        if rate > 0.0 {
            let gap = crate::rng::sample_exponential(rng, 1.0 / rate);
            let cand = *mark + SimDuration::from_secs_f64(gap);
            if cand <= *next_transition {
                time_in_state[s] += (cand - *mark).as_secs_f64();
                arrivals_in_state[s] += 1;
                *mark = cand;
                return cand - now;
            }
        }
        let tr = *next_transition;
        time_in_state[s] += (tr - *mark).as_secs_f64();
        *mark = tr;
        *state = (s + 1) % states.len();
        let dwell = crate::rng::sample_exponential(rng, states[*state].mean_dwell_s);
        *next_transition = tr + SimDuration::from_secs_f64(dwell);
    }
}

/// The instantaneous flash-crowd rate: baseline × all spike multipliers.
fn flash_rate(base: &RateSchedule, spikes: &[FlashSpike], t_s: f64) -> f64 {
    base.rate_at(SimTime::from_secs_f64(t_s))
        * spikes.iter().map(|s| s.multiplier_at(t_s)).product::<f64>()
}

/// Exact non-homogeneous Poisson sampling by thinning against the peak
/// rate (baseline peak × product of spike peaks).
fn flash_gap(
    base: &RateSchedule,
    spikes: &[FlashSpike],
    now: SimTime,
    rng: &mut SmallRng,
) -> SimDuration {
    let lambda_max = base.peak() * spikes.iter().map(|s| s.peak_multiplier).product::<f64>();
    let start = now.as_secs_f64();
    let mut t = start;
    loop {
        t += crate::rng::sample_exponential(rng, 1.0 / lambda_max);
        let u: f64 = rng.gen();
        if u * lambda_max <= flash_rate(base, spikes, t) {
            return SimDuration::from_secs_f64(t - start);
        }
    }
}

/// A weighted mix of request types issued by a client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestMix {
    /// `(request_type, probability)` entries; probabilities sum to 1.
    pub entries: Vec<(RequestTypeId, f64)>,
}

impl RequestMix {
    /// A single request type.
    pub fn single(ty: RequestTypeId) -> Self {
        RequestMix {
            entries: vec![(ty, 1.0)],
        }
    }

    /// A weighted mix (weights are normalized).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or total weight is not positive.
    pub fn weighted(entries: Vec<(RequestTypeId, f64)>) -> Self {
        assert!(!entries.is_empty(), "request mix must not be empty");
        let total: f64 = entries.iter().map(|e| e.1).sum();
        assert!(total > 0.0, "request mix weights must be positive");
        RequestMix {
            entries: entries.into_iter().map(|(t, w)| (t, w / total)).collect(),
        }
    }

    /// Draws a request type.
    pub fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> RequestTypeId {
        let mut u: f64 = rng.gen();
        for &(ty, p) in &self.entries {
            if u < p {
                return ty;
            }
            u -= p;
        }
        self.entries.last().expect("mix is non-empty").0
    }

    /// Validates the mix.
    ///
    /// # Errors
    ///
    /// Returns a message if empty or probabilities do not sum to 1.
    pub fn validate(&self) -> Result<(), String> {
        if self.entries.is_empty() {
            return Err("request mix is empty".into());
        }
        let total: f64 = self.entries.iter().map(|e| e.1).sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(format!("request mix probabilities sum to {total}"));
        }
        Ok(())
    }
}

/// Closed-loop operation: a fixed population of users, each issuing its
/// next request one think time after the previous response arrives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoop {
    /// Concurrent users (each keeps at most one request in flight).
    pub users: usize,
    /// Think time between a response and the next request, seconds.
    pub think_time: Distribution,
}

impl ClosedLoop {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message on zero users or an invalid think-time.
    pub fn validate(&self) -> Result<(), String> {
        if self.users == 0 {
            return Err("closed loop needs at least one user".into());
        }
        self.think_time.validate()
    }
}

/// Static description of one workload client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientSpec {
    /// Client name.
    pub name: String,
    /// Number of connections to the root service (each HTTP/1.1-blocking).
    pub connections: usize,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// The request mix.
    pub mix: RequestMix,
    /// Request payload sizes in bytes (the paper's validation uses
    /// exponentially distributed value sizes).
    #[serde(default = "default_request_size")]
    pub request_size: Distribution,
    /// Closed-loop operation; when set, `arrivals` is ignored and `users`
    /// self-clocked requests circulate instead.
    #[serde(default)]
    pub closed_loop: Option<ClosedLoop>,
    /// Client-side timeout, seconds, measured from request generation.
    /// Timed-out requests are counted separately and excluded from the
    /// latency summary (the wrk2 error convention).
    #[serde(default)]
    pub timeout_s: Option<f64>,
}

fn default_request_size() -> Distribution {
    Distribution::constant(512.0)
}

impl ClientSpec {
    /// An open-loop Poisson client, like the paper's modified `wrk2` with
    /// 320 connections.
    pub fn open_loop(
        name: impl Into<String>,
        qps: f64,
        connections: usize,
        ty: RequestTypeId,
    ) -> Self {
        ClientSpec {
            name: name.into(),
            connections,
            arrivals: ArrivalProcess::poisson(qps),
            mix: RequestMix::single(ty),
            request_size: default_request_size(),
            closed_loop: None,
            timeout_s: None,
        }
    }

    /// A closed-loop client: `users` concurrent users with the given think
    /// time.
    pub fn closed_loop(
        name: impl Into<String>,
        users: usize,
        think_time: Distribution,
        connections: usize,
        ty: RequestTypeId,
    ) -> Self {
        ClientSpec {
            name: name.into(),
            connections,
            arrivals: ArrivalProcess::poisson(1.0), // unused in closed loop
            mix: RequestMix::single(ty),
            request_size: default_request_size(),
            closed_loop: Some(ClosedLoop { users, think_time }),
            timeout_s: None,
        }
    }

    /// Sets the request payload-size distribution (bytes).
    pub fn with_request_size(mut self, size: Distribution) -> Self {
        self.request_size = size;
        self
    }

    /// Sets the client-side timeout.
    pub fn with_timeout(mut self, timeout_s: f64) -> Self {
        self.timeout_s = Some(timeout_s);
        self
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a message naming the client and the invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.connections == 0 {
            return Err(format!("client {}: zero connections", self.name));
        }
        self.arrivals
            .validate()
            .map_err(|e| format!("client {}: {e}", self.name))?;
        self.request_size
            .validate()
            .map_err(|e| format!("client {}: {e}", self.name))?;
        if let Some(cl) = &self.closed_loop {
            cl.validate()
                .map_err(|e| format!("client {}: {e}", self.name))?;
        }
        if let Some(t) = self.timeout_s {
            if !(t.is_finite() && t > 0.0) {
                return Err(format!(
                    "client {}: timeout must be positive, got {t}",
                    self.name
                ));
            }
        }
        self.mix
            .validate()
            .map_err(|e| format!("client {}: {e}", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    #[test]
    fn constant_schedule() {
        let s = RateSchedule::constant(1000.0);
        assert!(s.validate().is_ok());
        assert_eq!(s.rate_at(SimTime::ZERO), 1000.0);
        assert_eq!(s.rate_at(SimTime::from_secs_f64(1e6)), 1000.0);
        assert_eq!(s.peak(), 1000.0);
    }

    #[test]
    fn piecewise_schedule_lookup() {
        let s = RateSchedule {
            segments: vec![(0.0, 100.0), (10.0, 200.0), (20.0, 50.0)],
        };
        assert!(s.validate().is_ok());
        assert_eq!(s.rate_at(SimTime::from_secs_f64(5.0)), 100.0);
        assert_eq!(s.rate_at(SimTime::from_secs_f64(10.0)), 200.0);
        assert_eq!(s.rate_at(SimTime::from_secs_f64(25.0)), 50.0);
        assert_eq!(s.peak(), 200.0);
    }

    #[test]
    fn schedule_validation() {
        assert!(RateSchedule { segments: vec![] }.validate().is_err());
        assert!(RateSchedule {
            segments: vec![(1.0, 10.0)]
        }
        .validate()
        .is_err());
        assert!(RateSchedule {
            segments: vec![(0.0, 0.0)]
        }
        .validate()
        .is_err());
        assert!(RateSchedule {
            segments: vec![(0.0, 10.0), (0.0, 20.0)]
        }
        .validate()
        .is_err());
    }

    #[test]
    fn diurnal_swings_between_bounds() {
        let s = RateSchedule::diurnal(1000.0, 9000.0, 60.0, 12);
        assert!(s.validate().is_ok());
        let rates: Vec<f64> = s.segments.iter().map(|x| x.1).collect();
        let lo = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = rates.iter().cloned().fold(0.0, f64::max);
        assert!((lo - 1000.0).abs() < 1.0, "trough {lo}");
        assert!((hi - 9000.0).abs() / 9000.0 < 0.05, "peak {hi}");
    }

    #[test]
    fn poisson_gaps_average_to_rate() {
        let p = ArrivalProcess::poisson(10_000.0);
        let mut rng = RngFactory::new(2).stream("client", 0);
        let n = 100_000;
        let total: f64 = (0..n)
            .map(|_| p.next_gap(SimTime::ZERO, &mut rng).as_secs_f64())
            .sum();
        let mean_gap = total / n as f64;
        assert!((mean_gap - 1e-4).abs() / 1e-4 < 0.02, "mean gap {mean_gap}");
    }

    #[test]
    fn uniform_gaps_are_exact() {
        let p = ArrivalProcess::Uniform {
            schedule: RateSchedule::constant(1000.0),
        };
        let mut rng = RngFactory::new(2).stream("client", 1);
        assert_eq!(
            p.next_gap(SimTime::ZERO, &mut rng),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn mix_choose_respects_weights() {
        let mix = RequestMix::weighted(vec![
            (RequestTypeId::from_raw(0), 3.0),
            (RequestTypeId::from_raw(1), 1.0),
        ]);
        assert!(mix.validate().is_ok());
        let mut rng = RngFactory::new(3).stream("mix", 0);
        let n = 100_000;
        let ones = (0..n).filter(|_| mix.choose(&mut rng).raw() == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "type-1 fraction {frac}");
    }

    #[test]
    fn client_spec_validation() {
        let ok = ClientSpec::open_loop("c", 1000.0, 320, RequestTypeId::from_raw(0));
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.connections = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let c = ClientSpec::open_loop("wrk2", 5000.0, 320, RequestTypeId::from_raw(0));
        let json = serde_json::to_string(&c).unwrap();
        let back: ClientSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn untyped_trace_serialization_is_unchanged() {
        // The optional `types` field must not appear for plain timestamp
        // traces (golden configs re-serialize byte-identically) and old
        // JSON without the field must still parse.
        let t = ArrivalProcess::trace(vec![0.0, 0.5, 1.0]);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, r#"{"type":"trace","timestamps":[0.0,0.5,1.0]}"#);
        let back: ArrivalProcess = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn typed_trace_validation() {
        let ok = ArrivalProcess::Trace {
            timestamps: vec![0.0, 1.0],
            types: vec!["get".into(), "post".into()],
        };
        assert!(ok.validate().is_ok());
        let bad = ArrivalProcess::Trace {
            timestamps: vec![0.0, 1.0],
            types: vec!["get".into()],
        };
        assert!(bad.validate().unwrap_err().contains("1 types"));
        let json = serde_json::to_string(&ok).unwrap();
        assert!(json.contains(r#""types":["get","post"]"#));
        assert_eq!(serde_json::from_str::<ArrivalProcess>(&json).unwrap(), ok);
    }

    #[test]
    fn mmpp_validation() {
        assert!(ArrivalProcess::mmpp(vec![]).validate().is_err());
        assert!(ArrivalProcess::on_off(0.0, 1.0, 1.0).validate().is_err());
        assert!(ArrivalProcess::mmpp(vec![MmppState {
            rate_qps: 100.0,
            mean_dwell_s: 0.0,
        }])
        .validate()
        .is_err());
        assert!(ArrivalProcess::on_off(5_000.0, 0.1, 0.4).validate().is_ok());
    }

    /// Drives a stateful process for `n` arrivals, returning arrival times.
    fn drive(p: &ArrivalProcess, seed: u64, n: usize) -> (Vec<f64>, ArrivalRt) {
        let factory = RngFactory::new(seed);
        let mut rt = p.runtime(&factory, 0);
        let mut shared = factory.stream("arrival", 0);
        let mut now = SimTime::ZERO + p.first_arrival_rt(&mut rt, &mut shared).unwrap();
        let mut times = Vec::with_capacity(n);
        times.push(now.as_secs_f64());
        for i in 1..n as u64 {
            now = now + p.gap_rt(&mut rt, i, now, &mut shared).unwrap();
            times.push(now.as_secs_f64());
        }
        (times, rt)
    }

    #[test]
    fn mmpp_per_state_rates_match_configuration() {
        let states = vec![
            MmppState {
                rate_qps: 8_000.0,
                mean_dwell_s: 0.050,
            },
            MmppState {
                rate_qps: 500.0,
                mean_dwell_s: 0.200,
            },
        ];
        let p = ArrivalProcess::mmpp(states.clone());
        // Stationary mean: (8000·0.05 + 500·0.2) / 0.25 = 2000 QPS.
        assert!((p.mean_rate_qps().unwrap() - 2_000.0).abs() < 1e-9);
        let (times, rt) = drive(&p, 7, 200_000);
        let (secs, counts) = rt.mmpp_occupancy().unwrap();
        // The empirical rate inside each state must match its configured
        // rate: conditionally on occupancy the process is plain Poisson,
        // so with >40k arrivals per state 5% is a generous CI bound.
        for (i, st) in states.iter().enumerate() {
            let emp = counts[i] as f64 / secs[i];
            assert!(
                (emp - st.rate_qps).abs() / st.rate_qps < 0.05,
                "state {i}: empirical {emp} vs configured {}",
                st.rate_qps
            );
        }
        // Occupancy fractions follow the dwell ratio (0.05 : 0.20).
        let frac = secs[0] / (secs[0] + secs[1]);
        assert!((frac - 0.2).abs() < 0.02, "state-0 occupancy {frac}");
        // And the whole stream is *bursty*: the index of dispersion of
        // 10 ms window counts far exceeds the Poisson value of 1.
        let horizon = *times.last().unwrap();
        let mut windows = vec![0.0f64; (horizon / 0.010).ceil() as usize + 1];
        for &t in &times {
            windows[(t / 0.010) as usize] += 1.0;
        }
        let mean = windows.iter().sum::<f64>() / windows.len() as f64;
        let var = windows.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / windows.len() as f64;
        assert!(var / mean > 2.0, "index of dispersion {}", var / mean);
    }

    #[test]
    fn flash_crowd_spike_multiplies_baseline_rate() {
        let p = ArrivalProcess::flash_crowd(
            1_000.0,
            vec![FlashSpike {
                at_s: 5.0,
                peak_multiplier: 8.0,
                ramp_s: 1.0,
                hold_s: 2.0,
                decay_s: 1.0,
            }],
        );
        assert!(p.validate().is_ok());
        let (times, _) = drive(&p, 11, 60_000);
        assert!(*times.last().unwrap() > 10.0, "need to cover the spike");
        let count_in = |lo: f64, hi: f64| times.iter().filter(|&&t| t >= lo && t < hi).count();
        // Baseline window [0, 5): 1000 QPS.
        let base = count_in(0.0, 5.0) as f64 / 5.0;
        assert!((base - 1_000.0).abs() / 1_000.0 < 0.05, "baseline {base}");
        // Hold window [6, 8): 8× the baseline.
        let hold = count_in(6.0, 8.0) as f64 / 2.0;
        assert!((hold - 8_000.0).abs() / 8_000.0 < 0.05, "hold {hold}");
        // After the decay the rate returns to baseline.
        let after = count_in(9.5, 14.5) as f64 / 5.0;
        assert!((after - 1_000.0).abs() / 1_000.0 < 0.06, "after {after}");
    }

    #[test]
    fn flash_spike_envelope_shape() {
        let s = FlashSpike {
            at_s: 10.0,
            peak_multiplier: 5.0,
            ramp_s: 2.0,
            hold_s: 4.0,
            decay_s: 2.0,
        };
        assert_eq!(s.multiplier_at(0.0), 1.0);
        assert_eq!(s.multiplier_at(11.0), 3.0); // mid-ramp
        assert_eq!(s.multiplier_at(13.0), 5.0); // hold
        assert_eq!(s.multiplier_at(17.0), 3.0); // mid-decay
        assert_eq!(s.multiplier_at(30.0), 1.0);
    }

    #[test]
    fn sessions_hit_long_run_rate_and_clump() {
        let p = ArrivalProcess::sessions(
            50.0,
            Distribution::constant(20.0),
            Distribution::constant(1e-3),
        );
        assert!(p.validate().is_ok());
        // Cycle: 1/50 s start gap + 19 ms of thinks for 20 requests.
        let expect = 20.0 / (0.02 + 0.019);
        assert!((p.mean_rate_qps().unwrap() - expect).abs() < 1e-9);
        let (times, _) = drive(&p, 3, 100_000);
        let emp = times.len() as f64 / times.last().unwrap();
        assert!(
            (emp - expect).abs() / expect < 0.02,
            "rate {emp} vs {expect}"
        );
        // Intra-session gaps are the constant think time: 19 of every 20
        // consecutive gaps must be exactly 1 ms.
        let thinks = times
            .windows(2)
            .filter(|w| (w[1] - w[0] - 1e-3).abs() < 1e-9)
            .count();
        let frac = thinks as f64 / (times.len() - 1) as f64;
        assert!((frac - 0.95).abs() < 0.01, "think-gap fraction {frac}");
    }

    #[test]
    fn bursty_processes_are_deterministic_per_seed() {
        let p = ArrivalProcess::on_off(5_000.0, 0.05, 0.1);
        let (a, _) = drive(&p, 42, 10_000);
        let (b, _) = drive(&p, 42, 10_000);
        assert_eq!(a, b);
        let (c, _) = drive(&p, 43, 10_000);
        assert_ne!(a, c);
    }

    #[test]
    fn stateless_processes_ignore_runtime_state() {
        // gap_rt on a Poisson process must consume the shared stream
        // exactly like gap_after — the byte-identity contract that keeps
        // pre-burst goldens unchanged.
        let p = ArrivalProcess::poisson(2_000.0);
        let factory = RngFactory::new(5);
        let mut rt = p.runtime(&factory, 0);
        let mut a = factory.stream("arrival", 0);
        let mut b = factory.stream("arrival", 0);
        for i in 0..1_000 {
            assert_eq!(
                p.gap_rt(&mut rt, i, SimTime::ZERO, &mut a),
                p.gap_after(i, SimTime::ZERO, &mut b)
            );
        }
    }

    #[test]
    fn offered_qps_rescaling_preserves_burst_structure() {
        use crate::config::ScenarioConfig;
        let mut cfg: ScenarioConfig =
            ScenarioConfig::from_json(crate::run::EXAMPLE_SCENARIO).unwrap();
        cfg.clients[0].arrivals = ArrivalProcess::on_off(4_000.0, 0.1, 0.3);
        let scaled = cfg.with_offered_qps(500.0);
        let got = scaled.clients[0].arrivals.mean_rate_qps().unwrap();
        assert!((got - 500.0).abs() < 1e-9, "mmpp mean {got}");
        // Burstiness (rate ratio between states) is preserved.
        if let ArrivalProcess::Mmpp { states } = &scaled.clients[0].arrivals {
            assert_eq!(states[1].rate_qps, 0.0);
            assert!(states[0].rate_qps > 500.0);
        } else {
            panic!("variant changed");
        }
        // Sessions: 5-request sessions with 2 ms thinks cap out at
        // 5/(4·2e-3) = 625 QPS; target a feasible 300 and hit it exactly.
        cfg.clients[0].arrivals = ArrivalProcess::sessions(
            10.0,
            Distribution::constant(5.0),
            Distribution::constant(2e-3),
        );
        let scaled = cfg.with_offered_qps(300.0);
        let got = scaled.clients[0].arrivals.mean_rate_qps().unwrap();
        assert!((got - 300.0).abs() < 1e-6, "sessions mean {got}");
    }
}
