//! Workload clients (`client.json`): open-loop and closed-loop load
//! generation, request mixes, and time-varying (diurnal) rate schedules.
//!
//! The paper's validation uses an open-loop generator (a modified `wrk2`)
//! with exponentially distributed inter-arrival times, a fixed number of
//! connections, and — for the power-management study — a diurnal load
//! pattern (Fig. 15).

use crate::dist::Distribution;
use crate::ids::RequestTypeId;
use crate::time::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A piecewise-constant request-rate schedule (QPS over time).
///
/// # Examples
///
/// ```
/// use uqsim_core::client::RateSchedule;
/// use uqsim_core::time::SimTime;
///
/// let sched = RateSchedule::diurnal(1_000.0, 10_000.0, 60.0, 6);
/// assert!(sched.rate_at(SimTime::ZERO) >= 1_000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSchedule {
    /// `(start_time_seconds, rate_qps)` segments, ascending by time. The
    /// first segment must start at 0; the last lasts forever.
    pub segments: Vec<(f64, f64)>,
}

impl RateSchedule {
    /// A constant rate.
    pub fn constant(qps: f64) -> Self {
        RateSchedule {
            segments: vec![(0.0, qps)],
        }
    }

    /// A sinusoid-sampled diurnal pattern between `min_qps` and `max_qps`:
    /// one full period lasts `period_s` seconds, discretized into `steps`
    /// piecewise-constant segments per period (repeating indefinitely is
    /// represented by two full periods; extend as needed).
    pub fn diurnal(min_qps: f64, max_qps: f64, period_s: f64, steps: usize) -> Self {
        assert!(steps >= 2, "diurnal needs at least 2 steps");
        let mut segments = Vec::new();
        // Two periods so minute-scale power experiments see the full swing
        // more than once.
        for k in 0..(2 * steps) {
            let t = k as f64 * period_s / steps as f64;
            let phase = 2.0 * std::f64::consts::PI * (k as f64 % steps as f64) / steps as f64;
            // Start at the trough, rise to the peak mid-period.
            let level = min_qps + (max_qps - min_qps) * 0.5 * (1.0 - phase.cos());
            segments.push((t, level));
        }
        RateSchedule { segments }
    }

    /// Validates the schedule.
    ///
    /// # Errors
    ///
    /// Returns a message if empty, rates are non-positive, or times are not
    /// ascending starting at 0.
    pub fn validate(&self) -> Result<(), String> {
        if self.segments.is_empty() {
            return Err("rate schedule is empty".into());
        }
        if self.segments[0].0 != 0.0 {
            return Err("rate schedule must start at t=0".into());
        }
        let mut prev = -1.0;
        for &(t, r) in &self.segments {
            if !(t.is_finite() && t > prev) {
                return Err(format!("segment times must be ascending, got {t}"));
            }
            if !(r.is_finite() && r > 0.0) {
                return Err(format!("rate must be positive, got {r}"));
            }
            prev = t;
        }
        Ok(())
    }

    /// The rate in effect at `time`.
    pub fn rate_at(&self, time: SimTime) -> f64 {
        let t = time.as_secs_f64();
        let mut rate = self.segments[0].1;
        for &(start, r) in &self.segments {
            if start <= t {
                rate = r;
            } else {
                break;
            }
        }
        rate
    }

    /// The peak rate across all segments.
    pub fn peak(&self) -> f64 {
        self.segments.iter().map(|s| s.1).fold(0.0, f64::max)
    }
}

/// The arrival process of an open-loop client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential gaps with mean `1/rate(t)`.
    Poisson {
        /// The (possibly time-varying) rate.
        schedule: RateSchedule,
    },
    /// Deterministic arrivals at exactly `rate(t)` QPS.
    Uniform {
        /// The (possibly time-varying) rate.
        schedule: RateSchedule,
    },
    /// Replay of a recorded arrival trace: absolute timestamps in seconds,
    /// ascending. Generation stops after the last timestamp.
    Trace {
        /// Arrival instants, seconds since simulation start.
        timestamps: Vec<f64>,
    },
}

impl ArrivalProcess {
    /// Poisson arrivals at a constant rate.
    pub fn poisson(qps: f64) -> Self {
        ArrivalProcess::Poisson {
            schedule: RateSchedule::constant(qps),
        }
    }

    /// Samples the gap until the next arrival after `now`.
    ///
    /// Equivalent to [`ArrivalProcess::gap_after`] with `issued = 0`; only
    /// correct for the stochastic processes, not for traces.
    pub fn next_gap<R: Rng + ?Sized>(&self, now: SimTime, rng: &mut R) -> SimDuration {
        self.gap_after(0, now, rng).unwrap_or(SimDuration::MAX)
    }

    /// The time of the first arrival (counted from simulation start), or
    /// `None` for an empty trace.
    pub fn first_arrival<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<SimDuration> {
        match self {
            ArrivalProcess::Trace { timestamps } => {
                timestamps.first().map(|&t| SimDuration::from_secs_f64(t))
            }
            _ => self.gap_after(0, SimTime::ZERO, rng),
        }
    }

    /// The gap from arrival number `issued` (0-based, just generated at
    /// `now`) to the next one; `None` when the workload is exhausted
    /// (trace replay only).
    pub fn gap_after<R: Rng + ?Sized>(
        &self,
        issued: u64,
        now: SimTime,
        rng: &mut R,
    ) -> Option<SimDuration> {
        match self {
            ArrivalProcess::Poisson { schedule } => {
                let rate = schedule.rate_at(now);
                Some(SimDuration::from_secs_f64(crate::rng::sample_exponential(
                    rng,
                    1.0 / rate,
                )))
            }
            ArrivalProcess::Uniform { schedule } => {
                Some(SimDuration::from_secs_f64(1.0 / schedule.rate_at(now)))
            }
            ArrivalProcess::Trace { timestamps } => {
                let cur = *timestamps.get(issued as usize)?;
                let next = *timestamps.get(issued as usize + 1)?;
                Some(SimDuration::from_secs_f64(next - cur))
            }
        }
    }

    /// The underlying schedule, for rate-based processes.
    pub fn schedule(&self) -> Option<&RateSchedule> {
        match self {
            ArrivalProcess::Poisson { schedule } | ArrivalProcess::Uniform { schedule } => {
                Some(schedule)
            }
            ArrivalProcess::Trace { .. } => None,
        }
    }

    /// Validates the process.
    ///
    /// # Errors
    ///
    /// Returns a message for invalid schedules or non-ascending traces.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ArrivalProcess::Poisson { schedule } | ArrivalProcess::Uniform { schedule } => {
                schedule.validate()
            }
            ArrivalProcess::Trace { timestamps } => {
                if timestamps.is_empty() {
                    return Err("arrival trace is empty".into());
                }
                let mut prev = -1.0;
                for &t in timestamps {
                    if !(t.is_finite() && t >= 0.0 && t >= prev) {
                        return Err(format!("trace timestamps must be ascending, got {t}"));
                    }
                    prev = t;
                }
                Ok(())
            }
        }
    }
}

/// A weighted mix of request types issued by a client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestMix {
    /// `(request_type, probability)` entries; probabilities sum to 1.
    pub entries: Vec<(RequestTypeId, f64)>,
}

impl RequestMix {
    /// A single request type.
    pub fn single(ty: RequestTypeId) -> Self {
        RequestMix {
            entries: vec![(ty, 1.0)],
        }
    }

    /// A weighted mix (weights are normalized).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or total weight is not positive.
    pub fn weighted(entries: Vec<(RequestTypeId, f64)>) -> Self {
        assert!(!entries.is_empty(), "request mix must not be empty");
        let total: f64 = entries.iter().map(|e| e.1).sum();
        assert!(total > 0.0, "request mix weights must be positive");
        RequestMix {
            entries: entries.into_iter().map(|(t, w)| (t, w / total)).collect(),
        }
    }

    /// Draws a request type.
    pub fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> RequestTypeId {
        let mut u: f64 = rng.gen();
        for &(ty, p) in &self.entries {
            if u < p {
                return ty;
            }
            u -= p;
        }
        self.entries.last().expect("mix is non-empty").0
    }

    /// Validates the mix.
    ///
    /// # Errors
    ///
    /// Returns a message if empty or probabilities do not sum to 1.
    pub fn validate(&self) -> Result<(), String> {
        if self.entries.is_empty() {
            return Err("request mix is empty".into());
        }
        let total: f64 = self.entries.iter().map(|e| e.1).sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(format!("request mix probabilities sum to {total}"));
        }
        Ok(())
    }
}

/// Closed-loop operation: a fixed population of users, each issuing its
/// next request one think time after the previous response arrives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoop {
    /// Concurrent users (each keeps at most one request in flight).
    pub users: usize,
    /// Think time between a response and the next request, seconds.
    pub think_time: Distribution,
}

impl ClosedLoop {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message on zero users or an invalid think-time.
    pub fn validate(&self) -> Result<(), String> {
        if self.users == 0 {
            return Err("closed loop needs at least one user".into());
        }
        self.think_time.validate()
    }
}

/// Static description of one workload client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientSpec {
    /// Client name.
    pub name: String,
    /// Number of connections to the root service (each HTTP/1.1-blocking).
    pub connections: usize,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// The request mix.
    pub mix: RequestMix,
    /// Request payload sizes in bytes (the paper's validation uses
    /// exponentially distributed value sizes).
    #[serde(default = "default_request_size")]
    pub request_size: Distribution,
    /// Closed-loop operation; when set, `arrivals` is ignored and `users`
    /// self-clocked requests circulate instead.
    #[serde(default)]
    pub closed_loop: Option<ClosedLoop>,
    /// Client-side timeout, seconds, measured from request generation.
    /// Timed-out requests are counted separately and excluded from the
    /// latency summary (the wrk2 error convention).
    #[serde(default)]
    pub timeout_s: Option<f64>,
}

fn default_request_size() -> Distribution {
    Distribution::constant(512.0)
}

impl ClientSpec {
    /// An open-loop Poisson client, like the paper's modified `wrk2` with
    /// 320 connections.
    pub fn open_loop(
        name: impl Into<String>,
        qps: f64,
        connections: usize,
        ty: RequestTypeId,
    ) -> Self {
        ClientSpec {
            name: name.into(),
            connections,
            arrivals: ArrivalProcess::poisson(qps),
            mix: RequestMix::single(ty),
            request_size: default_request_size(),
            closed_loop: None,
            timeout_s: None,
        }
    }

    /// A closed-loop client: `users` concurrent users with the given think
    /// time.
    pub fn closed_loop(
        name: impl Into<String>,
        users: usize,
        think_time: Distribution,
        connections: usize,
        ty: RequestTypeId,
    ) -> Self {
        ClientSpec {
            name: name.into(),
            connections,
            arrivals: ArrivalProcess::poisson(1.0), // unused in closed loop
            mix: RequestMix::single(ty),
            request_size: default_request_size(),
            closed_loop: Some(ClosedLoop { users, think_time }),
            timeout_s: None,
        }
    }

    /// Sets the request payload-size distribution (bytes).
    pub fn with_request_size(mut self, size: Distribution) -> Self {
        self.request_size = size;
        self
    }

    /// Sets the client-side timeout.
    pub fn with_timeout(mut self, timeout_s: f64) -> Self {
        self.timeout_s = Some(timeout_s);
        self
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a message naming the client and the invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.connections == 0 {
            return Err(format!("client {}: zero connections", self.name));
        }
        self.arrivals
            .validate()
            .map_err(|e| format!("client {}: {e}", self.name))?;
        self.request_size
            .validate()
            .map_err(|e| format!("client {}: {e}", self.name))?;
        if let Some(cl) = &self.closed_loop {
            cl.validate()
                .map_err(|e| format!("client {}: {e}", self.name))?;
        }
        if let Some(t) = self.timeout_s {
            if !(t.is_finite() && t > 0.0) {
                return Err(format!(
                    "client {}: timeout must be positive, got {t}",
                    self.name
                ));
            }
        }
        self.mix
            .validate()
            .map_err(|e| format!("client {}: {e}", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    #[test]
    fn constant_schedule() {
        let s = RateSchedule::constant(1000.0);
        assert!(s.validate().is_ok());
        assert_eq!(s.rate_at(SimTime::ZERO), 1000.0);
        assert_eq!(s.rate_at(SimTime::from_secs_f64(1e6)), 1000.0);
        assert_eq!(s.peak(), 1000.0);
    }

    #[test]
    fn piecewise_schedule_lookup() {
        let s = RateSchedule {
            segments: vec![(0.0, 100.0), (10.0, 200.0), (20.0, 50.0)],
        };
        assert!(s.validate().is_ok());
        assert_eq!(s.rate_at(SimTime::from_secs_f64(5.0)), 100.0);
        assert_eq!(s.rate_at(SimTime::from_secs_f64(10.0)), 200.0);
        assert_eq!(s.rate_at(SimTime::from_secs_f64(25.0)), 50.0);
        assert_eq!(s.peak(), 200.0);
    }

    #[test]
    fn schedule_validation() {
        assert!(RateSchedule { segments: vec![] }.validate().is_err());
        assert!(RateSchedule {
            segments: vec![(1.0, 10.0)]
        }
        .validate()
        .is_err());
        assert!(RateSchedule {
            segments: vec![(0.0, 0.0)]
        }
        .validate()
        .is_err());
        assert!(RateSchedule {
            segments: vec![(0.0, 10.0), (0.0, 20.0)]
        }
        .validate()
        .is_err());
    }

    #[test]
    fn diurnal_swings_between_bounds() {
        let s = RateSchedule::diurnal(1000.0, 9000.0, 60.0, 12);
        assert!(s.validate().is_ok());
        let rates: Vec<f64> = s.segments.iter().map(|x| x.1).collect();
        let lo = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = rates.iter().cloned().fold(0.0, f64::max);
        assert!((lo - 1000.0).abs() < 1.0, "trough {lo}");
        assert!((hi - 9000.0).abs() / 9000.0 < 0.05, "peak {hi}");
    }

    #[test]
    fn poisson_gaps_average_to_rate() {
        let p = ArrivalProcess::poisson(10_000.0);
        let mut rng = RngFactory::new(2).stream("client", 0);
        let n = 100_000;
        let total: f64 = (0..n)
            .map(|_| p.next_gap(SimTime::ZERO, &mut rng).as_secs_f64())
            .sum();
        let mean_gap = total / n as f64;
        assert!((mean_gap - 1e-4).abs() / 1e-4 < 0.02, "mean gap {mean_gap}");
    }

    #[test]
    fn uniform_gaps_are_exact() {
        let p = ArrivalProcess::Uniform {
            schedule: RateSchedule::constant(1000.0),
        };
        let mut rng = RngFactory::new(2).stream("client", 1);
        assert_eq!(
            p.next_gap(SimTime::ZERO, &mut rng),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn mix_choose_respects_weights() {
        let mix = RequestMix::weighted(vec![
            (RequestTypeId::from_raw(0), 3.0),
            (RequestTypeId::from_raw(1), 1.0),
        ]);
        assert!(mix.validate().is_ok());
        let mut rng = RngFactory::new(3).stream("mix", 0);
        let n = 100_000;
        let ones = (0..n).filter(|_| mix.choose(&mut rng).raw() == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "type-1 fraction {frac}");
    }

    #[test]
    fn client_spec_validation() {
        let ok = ClientSpec::open_loop("c", 1000.0, 320, RequestTypeId::from_raw(0));
        assert!(ok.validate().is_ok());
        let mut bad = ok.clone();
        bad.connections = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let c = ClientSpec::open_loop("wrk2", 5000.0, 320, RequestTypeId::from_raw(0));
        let json = serde_json::to_string(&c).unwrap();
        let back: ClientSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
