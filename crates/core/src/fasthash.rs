//! A minimal non-cryptographic hasher for small integer keys.
//!
//! The simulator's connection-routing maps (`pool_lookup`, `eph_free`) are
//! keyed by `(u32, u32)` instance pairs and sit on the per-request send
//! path. The std `HashMap` default (SipHash) costs more than the rest of
//! the lookup combined; this multiply–rotate hasher is a few cycles and
//! plenty good for non-adversarial integer keys.
//!
//! Determinism note: nothing iterates these maps, so hash order never
//! reaches any output — swapping the hasher cannot move goldens.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply–rotate hasher over the written words.
#[derive(Debug, Default)]
pub struct FastHasher {
    state: u64,
}

/// Odd multiplier with high bit entropy (2^64 / φ, the Fibonacci-hashing
/// constant).
const K: u64 = 0x9e37_79b9_7f4a_7c15;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(29) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One final avalanche so low output bits depend on all input bits
        // (HashMap uses the low bits for bucket selection).
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(K);
        h ^ (h >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `HashMap` with the fast integer hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<(u32, u32), u64> = FastMap::default();
        for a in 0..50u32 {
            for b in 0..50u32 {
                m.insert((a, b), (a as u64) << 32 | b as u64);
            }
        }
        for a in 0..50u32 {
            for b in 0..50u32 {
                assert_eq!(m.get(&(a, b)), Some(&((a as u64) << 32 | b as u64)));
            }
        }
        assert_eq!(m.len(), 2500);
    }

    #[test]
    fn pair_keys_spread_across_low_bits() {
        // Sequential (u32, u32) keys must not collapse onto a few buckets.
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<FastHasher> = Default::default();
        let mut low7 = std::collections::HashSet::new();
        for a in 0..32u32 {
            for b in 0..32u32 {
                low7.insert(bh.hash_one((a, b)) & 0x7f);
            }
        }
        assert!(
            low7.len() > 100,
            "only {} distinct low-bit patterns",
            low7.len()
        );
    }
}
