//! Empirical processing-time histograms.
//!
//! The paper's simulator consumes per-stage processing-time PDFs collected by
//! instrumenting real applications (Table I, "histograms"). We reproduce the
//! same input format: a list of `(upper_bound_seconds, probability)` bins,
//! sampled by inverse-CDF lookup with uniform interpolation inside a bin.
//! Histograms are serializable so they can be shipped alongside the JSON
//! configuration files, and can also be *collected* from any stream of
//! samples (e.g. to turn a parametric model into the histogram code path, or
//! to re-profile a simulated stage).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An empirical distribution over non-negative durations (seconds).
///
/// Bins are half-open intervals `(lower, upper]`; the first bin starts at
/// `start`. Sampling picks a bin proportionally to its probability mass and
/// draws uniformly within the bin.
///
/// # Examples
///
/// ```
/// use uqsim_core::histogram::Histogram;
///
/// // 50/50 mix of ~10us and ~100us processing times.
/// let h = Histogram::from_bins(0.0, vec![(10e-6, 0.5), (100e-6, 0.5)]).unwrap();
/// assert!((h.mean() - 30e-6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "HistogramRepr")]
pub struct Histogram {
    /// Lower bound of the first bin, in seconds.
    start: f64,
    /// `(upper_bound_seconds, probability)` per bin; upper bounds strictly
    /// increasing; probabilities sum to 1.
    bins: Vec<(f64, f64)>,
    /// Precomputed cumulative probabilities, same length as `bins`.
    #[serde(skip)]
    cdf: Vec<f64>,
}

/// The serialized shape of a [`Histogram`]; deserialization goes through
/// [`Histogram::from_bins`] so the cumulative table is always rebuilt and
/// the invariants re-checked.
#[derive(Debug, Deserialize)]
struct HistogramRepr {
    start: f64,
    bins: Vec<(f64, f64)>,
}

impl TryFrom<HistogramRepr> for Histogram {
    type Error = HistogramError;

    fn try_from(raw: HistogramRepr) -> Result<Self, Self::Error> {
        Histogram::from_bins(raw.start, raw.bins)
    }
}

/// Error building a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramError(String);

impl std::fmt::Display for HistogramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid histogram: {}", self.0)
    }
}

impl std::error::Error for HistogramError {}

impl Histogram {
    /// Builds a histogram from a starting lower bound and
    /// `(upper_bound, probability)` bins.
    ///
    /// # Errors
    ///
    /// Returns an error if bins are empty, bounds are not strictly
    /// increasing and non-negative, any probability is negative, or the
    /// probabilities do not sum to 1 (within 1e-6; they are renormalized).
    pub fn from_bins(start: f64, bins: Vec<(f64, f64)>) -> Result<Self, HistogramError> {
        if bins.is_empty() {
            return Err(HistogramError("no bins".into()));
        }
        if !(start.is_finite() && start >= 0.0) {
            return Err(HistogramError(format!("bad start bound {start}")));
        }
        let mut prev = start;
        let mut total = 0.0;
        for &(ub, p) in &bins {
            if !(ub.is_finite() && ub > prev) {
                return Err(HistogramError(format!(
                    "bin upper bound {ub} not strictly greater than {prev}"
                )));
            }
            if !(p.is_finite() && p >= 0.0) {
                return Err(HistogramError(format!("bad probability {p}")));
            }
            prev = ub;
            total += p;
        }
        if total <= 0.0 || (total - 1.0).abs() > 1e-6 {
            return Err(HistogramError(format!(
                "probabilities sum to {total}, expected 1"
            )));
        }
        let mut bins = bins;
        for b in &mut bins {
            b.1 /= total;
        }
        let mut h = Histogram {
            start,
            bins,
            cdf: Vec::new(),
        };
        h.rebuild_cdf();
        Ok(h)
    }

    /// Builds an equal-width histogram from raw samples (seconds).
    ///
    /// # Errors
    ///
    /// Returns an error if `samples` is empty, contains non-finite or
    /// negative values, or `num_bins` is zero.
    pub fn from_samples(samples: &[f64], num_bins: usize) -> Result<Self, HistogramError> {
        if samples.is_empty() {
            return Err(HistogramError("no samples".into()));
        }
        if num_bins == 0 {
            return Err(HistogramError("num_bins must be > 0".into()));
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &s in samples {
            if !s.is_finite() || s < 0.0 {
                return Err(HistogramError(format!("bad sample {s}")));
            }
            lo = lo.min(s);
            hi = hi.max(s);
        }
        if hi <= lo {
            // Degenerate: all samples identical; one narrow bin around it.
            let eps = (lo.abs() * 1e-6).max(1e-12);
            return Histogram::from_bins((lo - eps).max(0.0), vec![(lo + eps, 1.0)]);
        }
        let width = (hi - lo) / num_bins as f64;
        let mut counts = vec![0u64; num_bins];
        for &s in samples {
            let mut idx = ((s - lo) / width) as usize;
            if idx >= num_bins {
                idx = num_bins - 1;
            }
            counts[idx] += 1;
        }
        let n = samples.len() as f64;
        let bins = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (lo + width * (i + 1) as f64, c as f64 / n))
            .collect();
        Histogram::from_bins(lo, bins)
    }

    /// Rebuilds the cumulative table (called by `from_bins`).
    fn rebuild_cdf(&mut self) {
        let mut acc = 0.0;
        self.cdf = self
            .bins
            .iter()
            .map(|&(_, p)| {
                acc += p;
                acc
            })
            .collect();
        if let Some(last) = self.cdf.last_mut() {
            *last = 1.0;
        }
    }

    /// Draws one value (seconds) from the empirical distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        debug_assert_eq!(self.cdf.len(), self.bins.len(), "cdf not rebuilt");
        let u: f64 = rng.gen();
        let idx = match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => (i + 1).min(self.bins.len() - 1),
            Err(i) => i.min(self.bins.len() - 1),
        };
        let lower = if idx == 0 {
            self.start
        } else {
            self.bins[idx - 1].0
        };
        let upper = self.bins[idx].0;
        lower + (upper - lower) * rng.gen::<f64>()
    }

    /// Expected value assuming uniform mass within each bin.
    pub fn mean(&self) -> f64 {
        let mut prev = self.start;
        let mut acc = 0.0;
        for &(ub, p) in &self.bins {
            acc += p * (prev + ub) / 2.0;
            prev = ub;
        }
        acc
    }

    /// Lower bound of the support.
    pub fn min_value(&self) -> f64 {
        self.start
    }

    /// Upper bound of the support.
    pub fn max_value(&self) -> f64 {
        self.bins.last().expect("histogram has bins").0
    }

    /// Returns a copy with every bound multiplied by `factor` (used to model
    /// frequency scaling when only a reference-frequency profile exists).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scaled(&self, factor: f64) -> Histogram {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        let bins = self.bins.iter().map(|&(ub, p)| (ub * factor, p)).collect();
        Histogram::from_bins(self.start * factor, bins).expect("scaling preserves validity")
    }

    /// The `(upper_bound, probability)` bins.
    pub fn bins(&self) -> &[(f64, f64)] {
        &self.bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    fn rng() -> rand::rngs::SmallRng {
        RngFactory::new(1234).stream("hist", 0)
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Histogram::from_bins(0.0, vec![]).is_err());
        assert!(Histogram::from_bins(0.0, vec![(1.0, 0.5)]).is_err()); // sums to 0.5
        assert!(Histogram::from_bins(0.0, vec![(1.0, 0.5), (0.5, 0.5)]).is_err()); // not increasing
        assert!(Histogram::from_bins(0.0, vec![(1.0, -1.0), (2.0, 2.0)]).is_err());
        assert!(Histogram::from_bins(-1.0, vec![(1.0, 1.0)]).is_err());
    }

    #[test]
    fn samples_stay_in_support() {
        let h = Histogram::from_bins(1e-6, vec![(2e-6, 0.25), (4e-6, 0.75)]).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            let s = h.sample(&mut r);
            assert!((1e-6..=4e-6).contains(&s), "sample {s} out of support");
        }
    }

    #[test]
    fn sample_mean_matches_analytic_mean() {
        let h = Histogram::from_bins(0.0, vec![(10e-6, 0.5), (100e-6, 0.5)]).unwrap();
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| h.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - h.mean()).abs() / h.mean() < 0.02);
    }

    #[test]
    fn from_samples_roundtrips_mean() {
        let mut r = rng();
        let samples: Vec<f64> = (0..50_000)
            .map(|_| crate::rng::sample_exponential(&mut r, 1e-3))
            .collect();
        let emp_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let h = Histogram::from_samples(&samples, 200).unwrap();
        assert!((h.mean() - emp_mean).abs() / emp_mean < 0.05);
    }

    #[test]
    fn from_samples_degenerate_constant() {
        let h = Histogram::from_samples(&[5e-6, 5e-6, 5e-6], 10).unwrap();
        assert!((h.mean() - 5e-6).abs() < 1e-9);
    }

    #[test]
    fn scaling_scales_mean() {
        let h = Histogram::from_bins(0.0, vec![(10e-6, 1.0)]).unwrap();
        let h2 = h.scaled(2.0);
        assert!((h2.mean() - 2.0 * h.mean()).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip_rebuilds_cdf() {
        // Deserialization must yield a directly usable histogram: the CDF
        // is rebuilt by the try_from conversion, no manual step needed.
        let h = Histogram::from_bins(0.0, vec![(1e-6, 0.3), (2e-6, 0.7)]).unwrap();
        let json = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
        let mut r = rng();
        for _ in 0..1000 {
            assert!(back.sample(&mut r) <= 2e-6);
        }
    }

    #[test]
    fn serde_rejects_invalid_histograms() {
        let err = serde_json::from_str::<Histogram>(r#"{"start": 0.0, "bins": [[1.0, 0.5]]}"#);
        assert!(
            err.is_err(),
            "probabilities summing to 0.5 must be rejected"
        );
    }

    #[test]
    fn renormalizes_tiny_drift() {
        let h = Histogram::from_bins(0.0, vec![(1.0, 0.5 + 2e-7), (2.0, 0.5)]).unwrap();
        let total: f64 = h.bins().iter().map(|b| b.1).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
