//! Connections and connection pools.
//!
//! µqSim models HTTP/1.1-style blocking explicitly (§III-C): a connection
//! admits **one outstanding request at a time**; further sends queue behind
//! it. Tiers talk over fixed-size *connection pools*, whose exhaustion is a
//! first-class source of backpressure in microservice graphs.
//!
//! A connection is bound to a worker thread at each endpoint — requests
//! arriving at the server side enter that thread's queues, and replies
//! arriving back at the client side enter the original sender's queues —
//! matching how event-driven servers (NGINX, memcached) own sockets
//! per-worker.

use crate::ids::{ClientId, ConnectionId, InstanceId, JobId, PoolId, RequestId, ThreadId};
use std::collections::VecDeque;

/// The upstream (initiating) endpoint of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpEndpoint {
    /// An external workload client.
    Client(ClientId),
    /// A microservice instance (a worker thread within it).
    Instance {
        /// The upstream instance.
        instance: InstanceId,
        /// The worker thread owning this connection at the upstream.
        thread: ThreadId,
    },
}

/// Runtime state of one connection.
#[derive(Debug, Clone)]
pub struct Connection {
    /// Upstream endpoint.
    pub up: UpEndpoint,
    /// Downstream (serving) instance.
    pub down_instance: InstanceId,
    /// Worker thread owning this connection at the downstream instance.
    pub down_thread: ThreadId,
    /// Whether a request is currently outstanding (HTTP/1.1 blocking).
    pub busy: bool,
    /// Requests queued on this connection waiting for the slot (client
    /// connections only; pools use a pool-level wait queue instead).
    pub pending: VecDeque<RequestId>,
    /// Owning pool, if this is a pooled inter-tier connection.
    pub pool: Option<PoolId>,
}

impl Connection {
    /// Creates an idle connection.
    pub fn new(up: UpEndpoint, down_instance: InstanceId, down_thread: ThreadId) -> Self {
        Connection {
            up,
            down_instance,
            down_thread,
            busy: false,
            pending: VecDeque::new(),
            pool: None,
        }
    }

    /// The worker thread bound to this connection at `instance`, if
    /// `instance` is one of its endpoints.
    pub fn thread_at(&self, instance: InstanceId) -> Option<ThreadId> {
        if self.down_instance == instance {
            return Some(self.down_thread);
        }
        if let UpEndpoint::Instance {
            instance: up,
            thread,
        } = self.up
        {
            if up == instance {
                return Some(thread);
            }
        }
        None
    }
}

/// A fixed-size pool of connections between an upstream instance and a
/// downstream instance.
#[derive(Debug, Clone)]
pub struct ConnectionPool {
    /// Upstream instance.
    pub up_instance: InstanceId,
    /// Downstream instance.
    pub down_instance: InstanceId,
    /// All member connections.
    pub conns: Vec<ConnectionId>,
    /// Currently free member connections, each paired with its (immutable)
    /// upstream thread binding so `acquire` can scan for a preferred thread
    /// without dereferencing the global connection table per element.
    free: VecDeque<(ConnectionId, ThreadId)>,
    /// Jobs waiting for a free connection, FIFO.
    waiters: VecDeque<JobId>,
    /// Connections removed from service by a fault (leaked / shrunk); they
    /// are neither free nor busy until restored.
    leaked: Vec<(ConnectionId, ThreadId)>,
}

/// Upstream thread binding of a pooled connection (pools only connect
/// instances, never clients).
fn up_thread(conn_table: &[Connection], c: ConnectionId) -> ThreadId {
    match conn_table[c.index()].up {
        UpEndpoint::Instance { thread, .. } => thread,
        UpEndpoint::Client(_) => unreachable!("pooled connections originate from instances"),
    }
}

impl ConnectionPool {
    /// Creates a pool over the given (already-created) connections, all free.
    pub fn new(
        up_instance: InstanceId,
        down_instance: InstanceId,
        conns: Vec<ConnectionId>,
        conn_table: &[Connection],
    ) -> Self {
        let free = conns
            .iter()
            .map(|&c| (c, up_thread(conn_table, c)))
            .collect();
        ConnectionPool {
            up_instance,
            down_instance,
            conns,
            free,
            waiters: VecDeque::new(),
            leaked: Vec::new(),
        }
    }

    /// Acquires a free connection, preferring one whose upstream endpoint is
    /// bound to `prefer_thread` (so the reply returns to the sending
    /// worker). Returns `None` when the pool is exhausted.
    pub fn acquire(&mut self, prefer_thread: ThreadId) -> Option<ConnectionId> {
        if self.free.is_empty() {
            return None;
        }
        let pos = self
            .free
            .iter()
            .position(|&(_, thread)| thread == prefer_thread)
            .unwrap_or(0);
        self.free.remove(pos).map(|(c, _)| c)
    }

    /// Returns a connection to the pool. If jobs are waiting, hands the
    /// connection to the first waiter instead and returns it.
    pub fn release(
        &mut self,
        conn: ConnectionId,
        up_thread: ThreadId,
    ) -> Option<(JobId, ConnectionId)> {
        if let Some(job) = self.waiters.pop_front() {
            Some((job, conn))
        } else {
            self.free.push_back((conn, up_thread));
            None
        }
    }

    /// Enqueues a job to wait for a free connection.
    pub fn enqueue_waiter(&mut self, job: JobId) {
        self.waiters.push_back(job);
    }

    /// Number of free connections.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Number of waiting jobs.
    pub fn waiter_count(&self) -> usize {
        self.waiters.len()
    }

    /// Removes up to `n` currently-free connections from service (a
    /// connection-leak / pool-shrink fault). Returns how many were actually
    /// leaked (bounded by the free count — busy connections stay busy and
    /// return to service normally on release).
    pub fn leak(&mut self, n: usize) -> usize {
        let take = n.min(self.free.len());
        for _ in 0..take {
            let entry = self.free.pop_back().expect("checked free count");
            self.leaked.push(entry);
        }
        take
    }

    /// Returns every leaked connection to service. Waiting jobs are handed
    /// connections first (FIFO), mirroring [`ConnectionPool::release`]; the
    /// returned grants must be re-sent by the caller.
    pub fn restore_leaked(&mut self) -> Vec<(JobId, ConnectionId)> {
        let mut grants = Vec::new();
        while let Some((c, th)) = self.leaked.pop() {
            if let Some(grant) = self.release(c, th) {
                grants.push(grant);
            }
        }
        grants
    }

    /// Number of connections currently leaked out of service.
    pub fn leaked_count(&self) -> usize {
        self.leaked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn(up_thread: u32, down_thread: u32) -> Connection {
        Connection::new(
            UpEndpoint::Instance {
                instance: InstanceId::from_raw(0),
                thread: ThreadId::from_raw(up_thread),
            },
            InstanceId::from_raw(1),
            ThreadId::from_raw(down_thread),
        )
    }

    fn cid(n: u32) -> ConnectionId {
        ConnectionId::from_raw(n)
    }
    fn jid(n: u32) -> JobId {
        JobId::new(n, 0)
    }

    #[test]
    fn thread_at_resolves_both_endpoints() {
        let c = conn(3, 7);
        assert_eq!(
            c.thread_at(InstanceId::from_raw(1)),
            Some(ThreadId::from_raw(7))
        );
        assert_eq!(
            c.thread_at(InstanceId::from_raw(0)),
            Some(ThreadId::from_raw(3))
        );
        assert_eq!(c.thread_at(InstanceId::from_raw(9)), None);
    }

    #[test]
    fn client_conn_has_no_upstream_thread() {
        let c = Connection::new(
            UpEndpoint::Client(ClientId::from_raw(0)),
            InstanceId::from_raw(1),
            ThreadId::from_raw(2),
        );
        assert_eq!(c.thread_at(InstanceId::from_raw(0)), None);
        assert_eq!(
            c.thread_at(InstanceId::from_raw(1)),
            Some(ThreadId::from_raw(2))
        );
    }

    #[test]
    fn pool_acquire_prefers_matching_thread() {
        let table = vec![conn(0, 0), conn(1, 1), conn(1, 2)];
        let mut pool = ConnectionPool::new(
            InstanceId::from_raw(0),
            InstanceId::from_raw(1),
            vec![cid(0), cid(1), cid(2)],
            &table,
        );
        // Prefer thread 1 → gets conn 1 even though conn 0 is first.
        let got = pool.acquire(ThreadId::from_raw(1)).unwrap();
        assert_eq!(got, cid(1));
        // Next prefer-1 gets conn 2 (also thread 1 upstream).
        assert_eq!(pool.acquire(ThreadId::from_raw(1)).unwrap(), cid(2));
        // Exhausted preference falls back to front of free list.
        assert_eq!(pool.acquire(ThreadId::from_raw(1)).unwrap(), cid(0));
        assert!(pool.acquire(ThreadId::from_raw(1)).is_none());
    }

    #[test]
    fn pool_release_hands_to_waiter_first() {
        let table = vec![conn(0, 0)];
        let mut pool = ConnectionPool::new(
            InstanceId::from_raw(0),
            InstanceId::from_raw(1),
            vec![cid(0)],
            &table,
        );
        let got = pool.acquire(ThreadId::from_raw(0)).unwrap();
        pool.enqueue_waiter(jid(42));
        pool.enqueue_waiter(jid(43));
        assert_eq!(pool.waiter_count(), 2);
        // Release: conn is handed to job 42, not returned to the free list.
        assert_eq!(
            pool.release(got, ThreadId::from_raw(0)),
            Some((jid(42), cid(0)))
        );
        assert_eq!(pool.free_count(), 0);
        assert_eq!(
            pool.release(got, ThreadId::from_raw(0)),
            Some((jid(43), cid(0)))
        );
        // No waiters left: goes back to the free list.
        assert_eq!(pool.release(got, ThreadId::from_raw(0)), None);
        assert_eq!(pool.free_count(), 1);
    }

    #[test]
    fn pool_counts() {
        let table = vec![conn(0, 0), conn(1, 1)];
        let mut pool = ConnectionPool::new(
            InstanceId::from_raw(0),
            InstanceId::from_raw(1),
            vec![cid(0), cid(1)],
            &table,
        );
        assert_eq!(pool.free_count(), 2);
        assert_eq!(pool.waiter_count(), 0);
        pool.enqueue_waiter(jid(1));
        assert_eq!(pool.waiter_count(), 1);
    }
}
