//! Declarative JSON configuration (the paper's Table I inputs).
//!
//! µqSim's user interface is a set of JSON files: `service.json` (one per
//! microservice model), `machines.json`, `graph.json` (deployment),
//! `path.json` (request DAGs), and `client.json` (load). This module defines
//! serde mirrors of those inputs and a [`ScenarioConfig`] that lowers onto
//! [`ScenarioBuilder`] — so a scenario can
//! be authored either in code or entirely as data.
//!
//! Names (strings) are used for cross-references in the files and resolved
//! to ids at build time.

use crate::builder::{ExecSpec, ScenarioBuilder};
use crate::client::{ArrivalProcess, ClientSpec, RequestMix};
use crate::error::{SimError, SimResult};
use crate::ids::{InstanceId, PathNodeId, RequestTypeId, ServiceId};
use crate::machine::MachineSpec;
use crate::path::{
    FanInPolicy, InstanceSelect, LinkKind, NodeTarget, PathNodeSpec, PathSelect, RequestType,
};
use crate::service::ServiceModel;
use crate::sim::Simulator;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;

/// `graph.json`: one deployed instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceConfig {
    /// Instance name (referenced by paths and pools).
    pub name: String,
    /// Service model name.
    pub service: String,
    /// Machine name.
    pub machine: String,
    /// Dedicated cores.
    pub cores: usize,
    /// Execution model.
    pub exec: ExecConfig,
}

/// Execution-model configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ExecConfig {
    /// One worker per core, shared queues.
    Simple,
    /// Explicit threads with a context-switch cost.
    MultiThreaded {
        /// Worker thread count.
        threads: usize,
        /// Context-switch overhead, seconds.
        #[serde(default)]
        ctx_switch_s: f64,
    },
}

/// `graph.json`: one connection pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Upstream instance name.
    pub up: String,
    /// Downstream instance name.
    pub down: String,
    /// Pool size (connections).
    pub size: usize,
}

/// `path.json`: one node of a request DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathNodeConfig {
    /// Node name (unique within the request type).
    pub name: String,
    /// Target: `{"type": "client_sink"}` or a service execution.
    pub target: NodeTargetConfig,
    /// Child node names.
    #[serde(default)]
    pub children: Vec<String>,
    /// Link kind: `request` (default), `reply_to_parent`, or
    /// `{"reply": "<node>"}`.
    #[serde(default)]
    pub link: LinkConfig,
    /// Hold the executing thread until the named node arrives back.
    #[serde(default)]
    pub block_thread_until: Option<String>,
    /// Execute on the same thread as the named node.
    #[serde(default)]
    pub pin_thread_of: Option<String>,
    /// Fan-in firing policy at this node: `{"type": "all"}` (default),
    /// `{"type": "quorum", "k": 2}`, or `{"type": "best_effort"}`.
    #[serde(default)]
    pub fan_in_policy: FanInPolicy,
}

/// Target configuration for a path node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum NodeTargetConfig {
    /// Run on an instance of a service.
    Service {
        /// Service name (for validation).
        service: String,
        /// Instance selection.
        instance: InstanceSelectConfig,
        /// Execution path name within the service, or `null` for
        /// probabilistic selection.
        #[serde(default)]
        exec_path: Option<String>,
    },
    /// The client sink.
    ClientSink,
}

/// Instance selection configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum InstanceSelectConfig {
    /// A fixed instance by name.
    Fixed {
        /// Instance name.
        name: String,
    },
    /// Round-robin over named instances.
    RoundRobin {
        /// Instance names.
        names: Vec<String>,
    },
    /// Same instance as an earlier node.
    SameAsNode {
        /// Node name.
        node: String,
    },
}

/// Link configuration.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum LinkConfig {
    /// Fresh request edge.
    #[default]
    Request,
    /// Reply on the sending parent's entry connection.
    ReplyToParent,
    /// Reply on the named node's entry connection.
    Reply {
        /// Node name.
        of: String,
    },
    /// Per-parent reply routing: `(parent node name, entry-connection node
    /// name)` pairs.
    ReplyVia {
        /// The routing map.
        entries: Vec<(String, String)>,
    },
}

/// `path.json`: one request type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTypeConfig {
    /// Request type name.
    pub name: String,
    /// Nodes; the first is the root.
    pub nodes: Vec<PathNodeConfig>,
}

/// `client.json`: one workload client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientConfig {
    /// Client name.
    pub name: String,
    /// Connection count.
    pub connections: usize,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// `(request type name, weight)` mix.
    pub mix: Vec<(String, f64)>,
    /// Root instance names the client connects to.
    pub roots: Vec<String>,
    /// Request payload sizes in bytes (defaults to 512-byte constants).
    #[serde(default = "default_request_size")]
    pub request_size: crate::dist::Distribution,
    /// Closed-loop operation (overrides `arrivals`).
    #[serde(default)]
    pub closed_loop: Option<crate::client::ClosedLoop>,
    /// Client-side timeout, seconds.
    #[serde(default)]
    pub timeout_s: Option<f64>,
}

fn default_request_size() -> crate::dist::Distribution {
    crate::dist::Distribution::constant(512.0)
}

/// The complete scenario: the union of all of Table I's inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Master seed.
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Warmup, seconds.
    #[serde(default = "default_warmup")]
    pub warmup_s: f64,
    /// Windowed-stats width, seconds (optional).
    #[serde(default)]
    pub window_s: Option<f64>,
    /// `machines.json`.
    pub machines: Vec<MachineSpec>,
    /// The `service.json` files.
    pub services: Vec<ServiceModel>,
    /// `graph.json`: deployment.
    pub instances: Vec<InstanceConfig>,
    /// `graph.json`: pools.
    #[serde(default)]
    pub pools: Vec<PoolConfig>,
    /// `path.json`.
    pub request_types: Vec<RequestTypeConfig>,
    /// `client.json`.
    pub clients: Vec<ClientConfig>,
}

fn default_seed() -> u64 {
    1
}
fn default_warmup() -> f64 {
    1.0
}

impl ScenarioConfig {
    /// Parses a scenario from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] on parse failure.
    pub fn from_json(json: &str) -> SimResult<Self> {
        serde_json::from_str(json).map_err(|e| SimError::Config {
            source_name: "scenario".into(),
            detail: e.to_string(),
        })
    }

    /// Loads a scenario from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns I/O or parse errors.
    pub fn from_file(path: &Path) -> SimResult<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| SimError::Config {
            source_name: path.display().to_string(),
            detail: e.to_string(),
        })
    }

    /// Loads a scenario from a directory in the paper's Table I layout:
    ///
    /// * `machines.json` — `[MachineSpec, ...]`
    /// * `services.json` — `[ServiceModel, ...]` (the `service.json` files,
    ///   collected)
    /// * `graph.json` — `{ "instances": [...], "pools": [...] }`
    /// * `path.json` — `[RequestTypeConfig, ...]`
    /// * `client.json` — `[ClientConfig, ...]`
    /// * `sim.json` — optional `{ "seed", "warmup_s", "window_s" }`
    ///
    /// # Errors
    ///
    /// Returns I/O or parse errors naming the offending file.
    pub fn from_dir(dir: &Path) -> SimResult<Self> {
        fn load<T: serde::de::DeserializeOwned>(dir: &Path, name: &str) -> SimResult<T> {
            let path = dir.join(name);
            let text = std::fs::read_to_string(&path)?;
            serde_json::from_str(&text).map_err(|e| SimError::Config {
                source_name: path.display().to_string(),
                detail: e.to_string(),
            })
        }

        #[derive(Deserialize)]
        struct GraphFile {
            instances: Vec<InstanceConfig>,
            #[serde(default)]
            pools: Vec<PoolConfig>,
        }
        #[derive(Deserialize, Default)]
        struct SimFile {
            #[serde(default = "default_seed")]
            seed: u64,
            #[serde(default = "default_warmup")]
            warmup_s: f64,
            #[serde(default)]
            window_s: Option<f64>,
        }

        let machines: Vec<MachineSpec> = load(dir, "machines.json")?;
        let services: Vec<ServiceModel> = load(dir, "services.json")?;
        let graph: GraphFile = load(dir, "graph.json")?;
        let request_types: Vec<RequestTypeConfig> = load(dir, "path.json")?;
        let clients: Vec<ClientConfig> = load(dir, "client.json")?;
        let sim: SimFile = if dir.join("sim.json").exists() {
            load(dir, "sim.json")?
        } else {
            SimFile {
                seed: default_seed(),
                warmup_s: default_warmup(),
                window_s: None,
            }
        };
        Ok(ScenarioConfig {
            seed: sim.seed,
            warmup_s: sim.warmup_s,
            window_s: sim.window_s,
            machines,
            services,
            instances: graph.instances,
            pools: graph.pools,
            request_types,
            clients,
        })
    }

    /// Writes the scenario to a directory in the Table I layout (the
    /// inverse of [`ScenarioConfig::from_dir`]).
    ///
    /// # Errors
    ///
    /// Returns I/O errors.
    pub fn write_dir(&self, dir: &Path) -> SimResult<()> {
        std::fs::create_dir_all(dir)?;
        let write = |name: &str, value: serde_json::Value| -> SimResult<()> {
            let text = serde_json::to_string_pretty(&value).expect("config serializes");
            std::fs::write(dir.join(name), text)?;
            Ok(())
        };
        write(
            "machines.json",
            serde_json::to_value(&self.machines).expect("serializes"),
        )?;
        write(
            "services.json",
            serde_json::to_value(&self.services).expect("serializes"),
        )?;
        write(
            "graph.json",
            serde_json::json!({ "instances": self.instances, "pools": self.pools }),
        )?;
        write(
            "path.json",
            serde_json::to_value(&self.request_types).expect("serializes"),
        )?;
        write(
            "client.json",
            serde_json::to_value(&self.clients).expect("serializes"),
        )?;
        write(
            "sim.json",
            serde_json::json!({
                "seed": self.seed, "warmup_s": self.warmup_s, "window_s": self.window_s
            }),
        )?;
        Ok(())
    }

    /// Serializes the scenario to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serializes")
    }

    /// Returns a copy with the master seed replaced — the whole scenario
    /// (arrivals, service times, path selection) re-randomizes from it.
    pub fn with_seed(&self, seed: u64) -> Self {
        let mut cfg = self.clone();
        cfg.seed = seed;
        cfg
    }

    /// Returns a copy with every open-loop client's rate schedule pinned to
    /// `qps`, turning the configured schedule into a load *shape* that a
    /// sweep re-scales per point. An MMPP keeps its burst structure but has
    /// its state rates scaled so the stationary mean is `qps`; a flash
    /// crowd has its baseline pinned (spikes stay relative multipliers); a
    /// sessions client scales its session rate so the long-run request
    /// rate is `qps`. Trace-replay clients have no rate to scale and are
    /// left untouched.
    pub fn with_offered_qps(&self, qps: f64) -> Self {
        let mut cfg = self.clone();
        for client in &mut cfg.clients {
            let mean = client.arrivals.mean_rate_qps();
            match &mut client.arrivals {
                ArrivalProcess::Poisson { schedule }
                | ArrivalProcess::Uniform { schedule }
                | ArrivalProcess::FlashCrowd { base: schedule, .. } => {
                    for seg in &mut schedule.segments {
                        seg.1 = qps;
                    }
                }
                ArrivalProcess::Mmpp { states } => {
                    let mean = mean.expect("mmpp has a stationary rate");
                    for s in states {
                        s.rate_qps *= qps / mean;
                    }
                }
                ArrivalProcess::Sessions {
                    session_rate_qps,
                    requests_per_session,
                    think_time,
                } => {
                    // Solve the back-to-back cycle equation for the session
                    // rate that yields `qps` overall; when `qps` exceeds
                    // the think-time-limited maximum, saturate (sessions
                    // start essentially back to back).
                    let k = requests_per_session.mean().max(1.0);
                    let inv = (k / qps - (k - 1.0) * think_time.mean()).max(1e-9);
                    *session_rate_qps = 1.0 / inv;
                }
                ArrivalProcess::Trace { .. } => {}
            }
        }
        cfg
    }

    /// Lowers the configuration onto a builder and constructs the simulator.
    ///
    /// # Errors
    ///
    /// Returns an error for dangling names or structurally invalid inputs.
    pub fn build(&self) -> SimResult<Simulator> {
        let mut b = ScenarioBuilder::new(self.seed);
        b.warmup(SimDuration::from_secs_f64(self.warmup_s));
        if let Some(w) = self.window_s {
            b.window(SimDuration::from_secs_f64(w));
        }

        let mut machine_ids = HashMap::new();
        for m in &self.machines {
            let id = b.add_machine(m.clone());
            machine_ids.insert(m.name.clone(), id);
        }
        let mut service_ids: HashMap<String, ServiceId> = HashMap::new();
        for s in &self.services {
            let id = b.add_service(s.clone());
            service_ids.insert(s.name.clone(), id);
        }
        // Instances and pools live in `graph.json` under the Table I
        // layout, so their dangling references get errors naming that file
        // and the offending key — mirroring faults.json diagnostics.
        let graph_err = |key: String, kind: &str, name: &str| SimError::Config {
            source_name: "graph.json".to_string(),
            detail: format!("{key}: unknown {kind} `{name}`"),
        };
        let mut instance_ids: HashMap<String, InstanceId> = HashMap::new();
        for (idx, i) in self.instances.iter().enumerate() {
            let svc = *service_ids.get(&i.service).ok_or_else(|| {
                graph_err(format!("instances[{idx}].service"), "service", &i.service)
            })?;
            let mach = *machine_ids.get(&i.machine).ok_or_else(|| {
                graph_err(format!("instances[{idx}].machine"), "machine", &i.machine)
            })?;
            let exec = match i.exec {
                ExecConfig::Simple => ExecSpec::Simple,
                ExecConfig::MultiThreaded {
                    threads,
                    ctx_switch_s,
                } => ExecSpec::MultiThreaded {
                    threads,
                    ctx_switch: SimDuration::from_secs_f64(ctx_switch_s),
                },
            };
            let id = b.add_instance(i.name.clone(), svc, mach, i.cores, exec)?;
            instance_ids.insert(i.name.clone(), id);
        }
        for (idx, p) in self.pools.iter().enumerate() {
            let up = *instance_ids
                .get(&p.up)
                .ok_or_else(|| graph_err(format!("pools[{idx}].up"), "instance", &p.up))?;
            let down = *instance_ids
                .get(&p.down)
                .ok_or_else(|| graph_err(format!("pools[{idx}].down"), "instance", &p.down))?;
            b.add_pool(up, down, p.size)?;
        }
        let mut type_ids: HashMap<String, RequestTypeId> = HashMap::new();
        for t in &self.request_types {
            let ty = lower_request_type(t, &service_ids, &instance_ids, &self.services)?;
            let id = b.add_request_type(ty)?;
            type_ids.insert(t.name.clone(), id);
        }
        for c in &self.clients {
            let mut entries = Vec::new();
            for (name, w) in &c.mix {
                let id = *type_ids.get(name).ok_or_else(|| SimError::UnknownEntity {
                    kind: "request type",
                    name: name.clone(),
                })?;
                entries.push((id, *w));
            }
            let mut roots = Vec::new();
            for r in &c.roots {
                roots.push(*instance_ids.get(r).ok_or_else(|| SimError::UnknownEntity {
                    kind: "instance",
                    name: r.clone(),
                })?);
            }
            let spec = ClientSpec {
                name: c.name.clone(),
                connections: c.connections,
                arrivals: c.arrivals.clone(),
                mix: RequestMix::weighted(entries),
                request_size: c.request_size.clone(),
                closed_loop: c.closed_loop.clone(),
                timeout_s: c.timeout_s,
            };
            b.add_client(spec, roots);
        }
        b.build()
    }
}

fn lower_request_type(
    t: &RequestTypeConfig,
    service_ids: &HashMap<String, ServiceId>,
    instance_ids: &HashMap<String, InstanceId>,
    services: &[ServiceModel],
) -> SimResult<RequestType> {
    let node_ids: HashMap<&str, PathNodeId> = t
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.name.as_str(), PathNodeId::from_raw(i as u32)))
        .collect();
    let lookup_node = |name: &str| -> SimResult<PathNodeId> {
        node_ids
            .get(name)
            .copied()
            .ok_or_else(|| SimError::UnknownEntity {
                kind: "path node",
                name: name.to_string(),
            })
    };
    let mut nodes = Vec::with_capacity(t.nodes.len());
    for n in &t.nodes {
        let target = match &n.target {
            NodeTargetConfig::ClientSink => NodeTarget::ClientSink,
            NodeTargetConfig::Service {
                service,
                instance,
                exec_path,
            } => {
                let svc = *service_ids
                    .get(service)
                    .ok_or_else(|| SimError::UnknownEntity {
                        kind: "service",
                        name: service.clone(),
                    })?;
                let isel = match instance {
                    InstanceSelectConfig::Fixed { name } => InstanceSelect::Fixed {
                        instance: *instance_ids.get(name).ok_or_else(|| {
                            SimError::UnknownEntity {
                                kind: "instance",
                                name: name.clone(),
                            }
                        })?,
                    },
                    InstanceSelectConfig::RoundRobin { names } => {
                        let mut v = Vec::new();
                        for name in names {
                            v.push(*instance_ids.get(name).ok_or_else(|| {
                                SimError::UnknownEntity {
                                    kind: "instance",
                                    name: name.clone(),
                                }
                            })?);
                        }
                        InstanceSelect::RoundRobin { instances: v }
                    }
                    InstanceSelectConfig::SameAsNode { node } => InstanceSelect::SameAsNode {
                        node: lookup_node(node)?,
                    },
                };
                let psel = match exec_path {
                    None => PathSelect::Probabilistic,
                    Some(p) => {
                        let model = &services[svc.index()];
                        let index = model.path_index(p).ok_or_else(|| SimError::UnknownEntity {
                            kind: "execution path",
                            name: format!("{}.{}", service, p),
                        })?;
                        PathSelect::Fixed { index }
                    }
                };
                NodeTarget::Service {
                    service: svc,
                    instance: isel,
                    exec_path: psel,
                }
            }
        };
        let link = match &n.link {
            LinkConfig::Request => LinkKind::Request,
            LinkConfig::ReplyToParent => LinkKind::ReplyToParent,
            LinkConfig::Reply { of } => LinkKind::Reply {
                of: lookup_node(of)?,
            },
            LinkConfig::ReplyVia { entries } => {
                let mut mapped = Vec::with_capacity(entries.len());
                for (parent, of) in entries {
                    mapped.push((lookup_node(parent)?, lookup_node(of)?));
                }
                LinkKind::ReplyVia { entries: mapped }
            }
        };
        let mut children = Vec::new();
        for c in &n.children {
            children.push(lookup_node(c)?);
        }
        let block_thread_until = n
            .block_thread_until
            .as_deref()
            .map(lookup_node)
            .transpose()?;
        let pin_thread_of = n.pin_thread_of.as_deref().map(lookup_node).transpose()?;
        nodes.push(PathNodeSpec {
            name: n.name.clone(),
            target,
            children,
            link,
            block_thread_until,
            pin_thread_of,
            fan_in_policy: n.fan_in_policy,
        });
    }
    Ok(RequestType::new(
        t.name.clone(),
        nodes,
        PathNodeId::from_raw(0),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal but complete scenario covering every config section.
    fn example_json() -> String {
        r#"{
            "seed": 7,
            "warmup_s": 0.2,
            "machines": [{
                "name": "m0", "cores": 6,
                "dvfs": { "levels_ghz": [2.6] },
                "network": {
                    "irq_cores": 0,
                    "rx_time": { "type": "constant", "value": 0.0 },
                    "wire_latency": { "type": "constant", "value": 0.00001 }
                }
            }],
            "services": [{
                "name": "api",
                "stages": [{
                    "name": "proc",
                    "queue": { "type": "single" },
                    "service": {
                        "base": { "type": "constant", "value": 0.0 },
                        "per_job": { "type": "exponential", "mean": 0.0001 },
                        "ref_freq_ghz": 2.6,
                        "freq_alpha": 1.0
                    }
                }],
                "paths": [{ "name": "default", "stages": [0] }]
            }],
            "instances": [{
                "name": "api0", "service": "api", "machine": "m0",
                "cores": 2, "exec": { "type": "simple" }
            }],
            "request_types": [{
                "name": "get",
                "nodes": [
                    {
                        "name": "front",
                        "target": {
                            "type": "service", "service": "api",
                            "instance": { "type": "fixed", "name": "api0" },
                            "exec_path": "default"
                        },
                        "children": ["sink"]
                    },
                    { "name": "sink", "target": { "type": "client_sink" },
                      "link": { "reply": { "of": "front" } } }
                ]
            }],
            "clients": [{
                "name": "wrk", "connections": 64,
                "arrivals": { "type": "poisson",
                              "schedule": { "segments": [[0.0, 2000.0]] } },
                "mix": [["get", 1.0]],
                "roots": ["api0"]
            }]
        }"#
        .to_string()
    }

    #[test]
    fn parses_and_builds() {
        let cfg = ScenarioConfig::from_json(&example_json()).unwrap();
        let mut sim = cfg.build().unwrap();
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.completed() > 1_000, "completed {}", sim.completed());
    }

    #[test]
    fn json_roundtrip_preserves_config() {
        let cfg = ScenarioConfig::from_json(&example_json()).unwrap();
        let json = cfg.to_json();
        let back = ScenarioConfig::from_json(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn unknown_names_are_rejected() {
        let mut cfg = ScenarioConfig::from_json(&example_json()).unwrap();
        cfg.instances[0].service = "nope".into();
        assert!(cfg.build().is_err());

        let mut cfg = ScenarioConfig::from_json(&example_json()).unwrap();
        cfg.clients[0].roots = vec!["nope".into()];
        assert!(cfg.build().is_err());

        let mut cfg = ScenarioConfig::from_json(&example_json()).unwrap();
        cfg.clients[0].mix = vec![("nope".into(), 1.0)];
        assert!(cfg.build().is_err());
    }

    /// Asserts that `cfg.build()` fails with a `graph.json` config error whose
    /// detail names the offending key and the dangling name.
    fn assert_graph_err(cfg: ScenarioConfig, key: &str, name: &str) {
        match cfg.build().unwrap_err() {
            SimError::Config {
                source_name,
                detail,
            } => {
                assert_eq!(source_name, "graph.json");
                assert!(detail.contains(key), "detail `{detail}` lacks key `{key}`");
                assert!(
                    detail.contains(name),
                    "detail `{detail}` lacks name `{name}`"
                );
            }
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn dangling_instance_service_names_file_and_key() {
        let mut cfg = ScenarioConfig::from_json(&example_json()).unwrap();
        cfg.instances[0].service = "ghost-svc".into();
        assert_graph_err(cfg, "instances[0].service", "ghost-svc");
    }

    #[test]
    fn dangling_instance_machine_names_file_and_key() {
        let mut cfg = ScenarioConfig::from_json(&example_json()).unwrap();
        cfg.instances[0].machine = "ghost-machine".into();
        assert_graph_err(cfg, "instances[0].machine", "ghost-machine");
    }

    #[test]
    fn dangling_pool_up_names_file_and_key() {
        let mut cfg = ScenarioConfig::from_json(&example_json()).unwrap();
        cfg.pools.push(PoolConfig {
            up: "ghost-up".into(),
            down: "api0".into(),
            size: 4,
        });
        assert_graph_err(cfg, "pools[0].up", "ghost-up");
    }

    #[test]
    fn dangling_pool_down_names_file_and_key() {
        let mut cfg = ScenarioConfig::from_json(&example_json()).unwrap();
        cfg.pools.push(PoolConfig {
            up: "api0".into(),
            down: "ghost-down".into(),
            size: 4,
        });
        assert_graph_err(cfg, "pools[0].down", "ghost-down");
    }

    #[test]
    fn bad_json_is_a_config_error() {
        let err = ScenarioConfig::from_json("{not json").unwrap_err();
        assert!(matches!(err, SimError::Config { .. }));
    }

    #[test]
    fn dir_layout_roundtrips() {
        let cfg = ScenarioConfig::from_json(&example_json()).unwrap();
        let dir = std::env::temp_dir().join(format!("uqsim-cfg-{}", std::process::id()));
        cfg.write_dir(&dir).unwrap();
        for f in [
            "machines.json",
            "services.json",
            "graph.json",
            "path.json",
            "client.json",
            "sim.json",
        ] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        let back = ScenarioConfig::from_dir(&dir).unwrap();
        assert_eq!(back, cfg);
        let mut sim = back.build().unwrap();
        sim.run_for(crate::time::SimDuration::from_millis(500));
        assert!(sim.completed() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_layout_missing_file_is_descriptive() {
        let dir = std::env::temp_dir().join(format!("uqsim-missing-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = ScenarioConfig::from_dir(&dir).unwrap_err();
        assert!(matches!(err, SimError::Io(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_exec_path_name_rejected() {
        let mut cfg = ScenarioConfig::from_json(&example_json()).unwrap();
        if let NodeTargetConfig::Service { exec_path, .. } =
            &mut cfg.request_types[0].nodes[0].target
        {
            *exec_path = Some("missing".into());
        }
        assert!(cfg.build().is_err());
    }
}
