//! Fault injection and resilience policies.
//!
//! This module is the chaos-engineering layer of the simulator: a
//! deterministic, seed-derived fault-injection engine plus per-client
//! resilience policies, threaded through the event loop. It lets a single
//! scenario answer questions the happy path cannot: what does tail latency
//! look like while an instance is down, do retries amplify overload into a
//! metastable collapse, and does a retry budget or circuit breaker restore
//! graceful degradation?
//!
//! # Fault plan
//!
//! A [`FaultPlan`] (conventionally `faults.json`) declares a *schedule* of
//! fault windows plus optional resilience policies:
//!
//! ```json
//! {
//!   "faults": [
//!     { "kind": "instance_crash", "instance": "api0", "at_s": 2.0,
//!       "restart_after_s": 1.0 },
//!     { "kind": "machine_slowdown", "machine": "server", "at_s": 4.0,
//!       "duration_s": 1.0, "factor": 3.0 },
//!     { "kind": "network_degrade", "machine": "server", "at_s": 6.0,
//!       "duration_s": 1.0, "added_latency_s": 0.002, "drop_prob": 0.05 },
//!     { "kind": "pool_leak", "up": "front0", "down": "api0", "at_s": 8.0,
//!       "leak": 4, "restore_after_s": 2.0 }
//!   ],
//!   "policy": {
//!     "clients": [
//!       { "client": "wrk", "max_retries": 3, "backoff_base_s": 0.01,
//!         "retry_budget": { "capacity": 20.0, "fill_per_s": 10.0 },
//!         "breaker": { "failure_threshold": 32, "cooldown_s": 0.5 } }
//!     ],
//!     "network": { "retransmit_limit": 2, "retransmit_backoff_s": 0.001 }
//!   }
//! }
//! ```
//!
//! [`Simulator::install_faults`](crate::sim::Simulator::install_faults)
//! lowers the plan (resolving names against the scenario, with errors that
//! name the file and offending key) and schedules
//! [`EventKind::FaultStart`](crate::event::EventKind::FaultStart) /
//! [`EventKind::FaultEnd`](crate::event::EventKind::FaultEnd) transitions.
//!
//! # Determinism
//!
//! All fault randomness (packet-drop coin flips, retry jitter) comes from a
//! dedicated RNG stream — `RngFactory::new(seed).stream("fault", 0)` —
//! independent of the service/arrival/path/network streams, so:
//!
//! * a run **without** a fault plan consumes exactly the same random draws
//!   as before this module existed (goldens stay byte-identical), and
//! * a run **with** a fault plan is byte-reproducible for a given
//!   `(seed, plan)` at any sweep parallelism.
//!
//! # Request outcomes
//!
//! Faults widen the terminal-outcome set. Every emitted request now ends in
//! exactly one of **completed**, **dropped** (a fault killed its last
//! in-flight branch), or **shed** (an open circuit breaker refused it at
//! emission; it completes instantly with a degraded marker and touches no
//! simulated resource). Timeouts remain an orthogonal flag: a timed-out
//! request releases its client-connection slot at the deadline but its
//! in-flight work still drains and is accounted as a late completion. The
//! trace auditor checks this conservation law event-by-event
//! (see [`crate::trace::TraceAuditor`]).

use crate::error::{SimError, SimResult};
use crate::ids::{InstanceId, MachineId, PoolId};
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------
// Plan configuration (what faults.json deserializes into)
// ---------------------------------------------------------------------

/// One scheduled fault window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FaultSpec {
    /// An instance crashes: its stage queues drain (killing the queued
    /// jobs), in-flight batches are discarded on completion, and arrivals
    /// die at the door until it restarts.
    InstanceCrash {
        /// Instance name (from `graph.json`).
        instance: String,
        /// Crash time, seconds.
        at_s: f64,
        /// Restart delay; `None` means the instance stays down forever.
        #[serde(default)]
        restart_after_s: Option<f64>,
    },
    /// Every stage on a machine runs slower by a multiplicative factor
    /// (thermal throttling, a noisy neighbor, a failing disk).
    MachineSlowdown {
        /// Machine name (from `machines.json`).
        machine: String,
        /// Window start, seconds.
        at_s: f64,
        /// Window length, seconds.
        duration_s: f64,
        /// Service-time multiplier (> 1 slows the machine down).
        factor: f64,
    },
    /// Packets destined for a machine gain latency and may be dropped.
    NetworkDegrade {
        /// Destination machine name.
        machine: String,
        /// Window start, seconds.
        at_s: f64,
        /// Window length, seconds.
        duration_s: f64,
        /// Extra one-way latency per delivery, seconds.
        #[serde(default)]
        added_latency_s: f64,
        /// Probability each delivery is dropped, in `[0, 1]`.
        #[serde(default)]
        drop_prob: f64,
    },
    /// Free connections leak out of a pool (shrinking its effective size)
    /// and optionally return later.
    PoolLeak {
        /// Upstream instance name of the pool.
        up: String,
        /// Downstream instance name of the pool.
        down: String,
        /// Leak time, seconds.
        at_s: f64,
        /// How many free connections to remove.
        leak: usize,
        /// When to return them; `None` means they never come back.
        #[serde(default)]
        restore_after_s: Option<f64>,
    },
}

/// Token-bucket retry budget: retries spend a token; tokens refill at a
/// fixed rate. An empty bucket suppresses the retry (the failure stands),
/// which is what prevents retry storms from amplifying overload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryBudgetSpec {
    /// Maximum (and initial) tokens.
    pub capacity: f64,
    /// Tokens regained per simulated second.
    pub fill_per_s: f64,
}

/// Circuit breaker: after `failure_threshold` consecutive failures the
/// breaker opens for `cooldown_s`; while open, new emissions are shed
/// immediately (completing as degraded, touching no simulated resource).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerSpec {
    /// Consecutive client-observed failures (timeouts or drops) that trip
    /// the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open, seconds.
    pub cooldown_s: f64,
}

fn default_backoff_base() -> f64 {
    0.01
}
fn default_backoff_cap() -> f64 {
    1.0
}
fn default_jitter() -> f64 {
    0.5
}

/// Per-client resilience policy: bounded retries with exponential backoff
/// and jitter, an optional hedged second attempt, an optional retry
/// budget, and an optional circuit breaker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientPolicySpec {
    /// Client name (from `client.json`).
    pub client: String,
    /// Retries after the initial attempt (0 disables retries).
    #[serde(default)]
    pub max_retries: u32,
    /// First-retry backoff, seconds; attempt `n` waits `base * 2^n`.
    #[serde(default = "default_backoff_base")]
    pub backoff_base_s: f64,
    /// Upper bound on the backoff delay, seconds.
    #[serde(default = "default_backoff_cap")]
    pub backoff_cap_s: f64,
    /// Uniform jitter fraction: the delay is scaled by `1 + jitter * u`
    /// with `u ~ U[0,1)` from the fault RNG stream.
    #[serde(default = "default_jitter")]
    pub jitter: f64,
    /// Emit a duplicate (hedged) attempt if the original is still
    /// unresolved after this many seconds; first completion wins.
    #[serde(default)]
    pub hedge_after_s: Option<f64>,
    /// Token-bucket retry budget; `None` means unbounded retries.
    #[serde(default)]
    pub retry_budget: Option<RetryBudgetSpec>,
    /// Circuit breaker; `None` means never shed.
    #[serde(default)]
    pub breaker: Option<BreakerSpec>,
}

/// Network retransmission policy for dropped packets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetPolicySpec {
    /// Retransmissions allowed per hop before the job is killed.
    pub retransmit_limit: u8,
    /// Base retransmission backoff, seconds (doubles per attempt).
    pub retransmit_backoff_s: f64,
}

/// The resilience-policy section of a fault plan.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicySpec {
    /// Per-client policies; clients not listed get no policy.
    #[serde(default)]
    pub clients: Vec<ClientPolicySpec>,
    /// Packet-retransmission policy; `None` kills dropped packets outright.
    #[serde(default)]
    pub network: Option<NetPolicySpec>,
}

/// A complete fault plan: scheduled faults plus resilience policies.
/// Deserialized from `faults.json`; installed with
/// [`Simulator::install_faults`](crate::sim::Simulator::install_faults).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Scheduled fault windows.
    #[serde(default)]
    pub faults: Vec<FaultSpec>,
    /// Resilience policies.
    #[serde(default)]
    pub policy: PolicySpec,
}

impl FaultPlan {
    /// Parses a plan from JSON text, with errors naming `faults.json`.
    pub fn from_json(text: &str) -> SimResult<FaultPlan> {
        let plan: FaultPlan = serde_json::from_str(text).map_err(|e| SimError::Config {
            source_name: "faults.json".to_string(),
            detail: e.to_string(),
        })?;
        plan.validate()?;
        Ok(plan)
    }

    /// Reads and parses a plan from a file.
    pub fn from_file(path: &std::path::Path) -> SimResult<FaultPlan> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
    }

    /// Structural validation that needs no scenario: ranges and shapes.
    /// Name resolution happens at install time, where the scenario's
    /// entity tables are available.
    pub fn validate(&self) -> SimResult<()> {
        let err = |key: String, detail: String| SimError::Config {
            source_name: "faults.json".to_string(),
            detail: format!("{key}: {detail}"),
        };
        for (i, f) in self.faults.iter().enumerate() {
            match f {
                FaultSpec::InstanceCrash { at_s, .. } => {
                    if *at_s < 0.0 {
                        return Err(err(
                            format!("faults[{i}].at_s"),
                            "must be non-negative".into(),
                        ));
                    }
                }
                FaultSpec::MachineSlowdown {
                    at_s,
                    duration_s,
                    factor,
                    ..
                } => {
                    if *at_s < 0.0 || *duration_s <= 0.0 {
                        return Err(err(
                            format!("faults[{i}].duration_s"),
                            "window must have positive length".into(),
                        ));
                    }
                    if *factor < 1.0 {
                        return Err(err(
                            format!("faults[{i}].factor"),
                            format!("slowdown factor must be >= 1, got {factor}"),
                        ));
                    }
                }
                FaultSpec::NetworkDegrade {
                    at_s,
                    duration_s,
                    added_latency_s,
                    drop_prob,
                    ..
                } => {
                    if *at_s < 0.0 || *duration_s <= 0.0 {
                        return Err(err(
                            format!("faults[{i}].duration_s"),
                            "window must have positive length".into(),
                        ));
                    }
                    if *added_latency_s < 0.0 {
                        return Err(err(
                            format!("faults[{i}].added_latency_s"),
                            "must be non-negative".into(),
                        ));
                    }
                    if !(0.0..=1.0).contains(drop_prob) {
                        return Err(err(
                            format!("faults[{i}].drop_prob"),
                            format!("must be in [0, 1], got {drop_prob}"),
                        ));
                    }
                }
                FaultSpec::PoolLeak { at_s, leak, .. } => {
                    if *at_s < 0.0 {
                        return Err(err(
                            format!("faults[{i}].at_s"),
                            "must be non-negative".into(),
                        ));
                    }
                    if *leak == 0 {
                        return Err(err(
                            format!("faults[{i}].leak"),
                            "must leak at least one connection".into(),
                        ));
                    }
                }
            }
        }
        for (i, p) in self.policy.clients.iter().enumerate() {
            let key = |field: &str| format!("policy.clients[{i}].{field}");
            if p.backoff_base_s < 0.0 || p.backoff_cap_s < 0.0 {
                return Err(err(key("backoff_base_s"), "must be non-negative".into()));
            }
            if p.jitter < 0.0 {
                return Err(err(key("jitter"), "must be non-negative".into()));
            }
            if let Some(h) = p.hedge_after_s {
                if h <= 0.0 {
                    return Err(err(key("hedge_after_s"), "must be positive".into()));
                }
            }
            if let Some(b) = &p.retry_budget {
                if b.capacity <= 0.0 || b.fill_per_s < 0.0 {
                    return Err(err(
                        key("retry_budget.capacity"),
                        "capacity must be positive and fill_per_s non-negative".into(),
                    ));
                }
            }
            if let Some(b) = &p.breaker {
                if b.failure_threshold == 0 || b.cooldown_s <= 0.0 {
                    return Err(err(
                        key("breaker.failure_threshold"),
                        "threshold must be >= 1 and cooldown_s positive".into(),
                    ));
                }
            }
        }
        if let Some(n) = &self.policy.network {
            if n.retransmit_backoff_s < 0.0 {
                return Err(err(
                    "policy.network.retransmit_backoff_s".into(),
                    "must be non-negative".into(),
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Lowered runtime state
// ---------------------------------------------------------------------

/// A lowered fault: entity names resolved to ids, times to [`SimTime`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum LoweredFault {
    /// Instance crash window.
    Crash {
        /// Crashed instance.
        instance: InstanceId,
    },
    /// Machine slowdown window.
    Slowdown {
        /// Affected machine.
        machine: MachineId,
        /// Service-time multiplier.
        factor: f64,
    },
    /// Network degradation window.
    NetDegrade {
        /// Affected (destination) machine.
        machine: MachineId,
        /// Extra per-delivery latency, seconds.
        added_s: f64,
        /// Per-delivery drop probability.
        drop_prob: f64,
    },
    /// Pool leak window.
    PoolLeak {
        /// Affected pool.
        pool: PoolId,
        /// Connections to remove.
        leak: usize,
    },
}

/// A lowered fault plus its schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ScheduledFault {
    pub(crate) fault: LoweredFault,
    pub(crate) at: SimTime,
    /// End of the window; `None` for permanent faults.
    pub(crate) until: Option<SimTime>,
}

/// Runtime token bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct BudgetRt {
    tokens: f64,
    capacity: f64,
    fill_per_s: f64,
    last_refill: SimTime,
}

impl BudgetRt {
    fn new(spec: RetryBudgetSpec) -> Self {
        BudgetRt {
            tokens: spec.capacity,
            capacity: spec.capacity,
            fill_per_s: spec.fill_per_s,
            last_refill: SimTime::ZERO,
        }
    }

    /// Refills to `now`, then takes one token if available.
    fn try_take(&mut self, now: SimTime) -> bool {
        let dt = (now - self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + dt * self.fill_per_s).min(self.capacity);
        self.last_refill = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Runtime circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct BreakerRt {
    consecutive_failures: u32,
    threshold: u32,
    cooldown: SimDuration,
    open_until: Option<SimTime>,
    /// Times the breaker has tripped (for the chaos report).
    pub(crate) trips: u64,
}

impl BreakerRt {
    fn new(spec: BreakerSpec) -> Self {
        BreakerRt {
            consecutive_failures: 0,
            threshold: spec.failure_threshold,
            cooldown: SimDuration::from_secs_f64(spec.cooldown_s),
            open_until: None,
            trips: 0,
        }
    }

    fn is_open(&self, now: SimTime) -> bool {
        self.open_until.is_some_and(|t| now < t)
    }

    fn on_success(&mut self) {
        self.consecutive_failures = 0;
    }

    fn on_failure(&mut self, now: SimTime) {
        if self.is_open(now) {
            return;
        }
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.threshold {
            self.open_until = Some(now + self.cooldown);
            self.consecutive_failures = 0;
            self.trips += 1;
        }
    }
}

/// Lowered per-client policy state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ClientPolicyRt {
    pub(crate) max_retries: u32,
    pub(crate) backoff_base: SimDuration,
    pub(crate) backoff_cap: SimDuration,
    pub(crate) jitter: f64,
    pub(crate) hedge_after: Option<SimDuration>,
    pub(crate) budget: Option<BudgetRt>,
    pub(crate) breaker: Option<BreakerRt>,
}

impl ClientPolicyRt {
    fn new(spec: &ClientPolicySpec) -> Self {
        ClientPolicyRt {
            max_retries: spec.max_retries,
            backoff_base: SimDuration::from_secs_f64(spec.backoff_base_s),
            backoff_cap: SimDuration::from_secs_f64(spec.backoff_cap_s),
            jitter: spec.jitter,
            hedge_after: spec.hedge_after_s.map(SimDuration::from_secs_f64),
            budget: spec.retry_budget.map(BudgetRt::new),
            breaker: spec.breaker.map(BreakerRt::new),
        }
    }

    /// True if the breaker is currently open (new emissions are shed).
    pub(crate) fn breaker_open(&self, now: SimTime) -> bool {
        self.breaker.as_ref().is_some_and(|b| b.is_open(now))
    }

    /// Records a client-observed success.
    pub(crate) fn on_success(&mut self) {
        if let Some(b) = &mut self.breaker {
            b.on_success();
        }
    }

    /// Records a client-observed failure (timeout or drop) and decides
    /// whether a retry may fire: the breaker must be closed, the attempt
    /// count under the cap, and the budget (if any) must yield a token.
    /// Returns the backoff delay for the retry when allowed.
    pub(crate) fn on_failure(
        &mut self,
        now: SimTime,
        attempt: u32,
        rng: &mut SmallRng,
    ) -> Option<SimDuration> {
        if let Some(b) = &mut self.breaker {
            b.on_failure(now);
        }
        if attempt >= self.max_retries || self.breaker_open(now) {
            return None;
        }
        if let Some(budget) = &mut self.budget {
            if !budget.try_take(now) {
                return None;
            }
        }
        let exp = (self.backoff_base.as_secs_f64() * f64::from(1u32 << attempt.min(20)))
            .min(self.backoff_cap.as_secs_f64());
        let jittered = exp * (1.0 + self.jitter * rng.gen::<f64>());
        Some(SimDuration::from_secs_f64(jittered))
    }
}

/// One line of the chaos report timeline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultTimelineEntry {
    /// Simulated time of the transition, seconds.
    pub t_s: f64,
    /// Human-readable description (deterministic wording).
    pub what: String,
}

/// Aggregate fault/resilience counters for one run, used by the chaos
/// report and threaded into sweep rows.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FaultSummary {
    /// Requests terminally dropped by a fault.
    pub dropped: u64,
    /// Requests shed by an open circuit breaker.
    pub shed: u64,
    /// Retry emissions.
    pub retried: u64,
    /// Hedged (duplicate) emissions.
    pub hedged: u64,
    /// Responses delivered in degraded mode: breaker sheds plus quorum /
    /// best-effort early-fire completions.
    pub degraded: u64,
    /// Client-side timeout deadlines that fired.
    pub timed_out: u64,
    /// Jobs killed by crashes, drains, and exhausted retransmissions.
    pub jobs_killed: u64,
    /// Packet-drop coin flips that came up dropped.
    pub packets_dropped: u64,
    /// Packet retransmissions fired.
    pub retransmits: u64,
    /// Circuit-breaker trips across all clients.
    pub breaker_trips: u64,
    /// Fault-window transitions, in firing order.
    pub timeline: Vec<FaultTimelineEntry>,
}

/// All fault-injection runtime state, boxed behind an `Option` on the
/// simulator so the disabled cost is one pointer and one branch per hook.
#[derive(Debug)]
pub(crate) struct FaultState {
    /// Dedicated RNG stream (`stream("fault", 0)`), independent of the
    /// simulation's other streams.
    pub(crate) rng: SmallRng,
    /// Lowered fault schedule, indexed by `EventKind::FaultStart/End`.
    pub(crate) schedule: Vec<ScheduledFault>,
    /// Per-instance down flag.
    pub(crate) instance_down: Vec<bool>,
    /// Per-machine service-time multiplier (1.0 = healthy).
    pub(crate) slow_factor: Vec<f64>,
    /// Per-machine added delivery latency, seconds.
    pub(crate) net_added_s: Vec<f64>,
    /// Per-machine packet-drop probability.
    pub(crate) net_drop_p: Vec<f64>,
    /// Per-client resilience policy (index = client id).
    pub(crate) client_policy: Vec<Option<ClientPolicyRt>>,
    /// Packet retransmission policy.
    pub(crate) net_policy: Option<NetPolicySpec>,
    /// Counters and timeline for the chaos report.
    pub(crate) summary: FaultSummary,
}

impl FaultState {
    /// Builds the runtime state for a validated, lowered plan.
    pub(crate) fn new(
        rng: SmallRng,
        schedule: Vec<ScheduledFault>,
        n_instances: usize,
        n_machines: usize,
        client_policy: Vec<Option<ClientPolicyRt>>,
        net_policy: Option<NetPolicySpec>,
    ) -> Self {
        FaultState {
            rng,
            schedule,
            instance_down: vec![false; n_instances],
            slow_factor: vec![1.0; n_machines],
            net_added_s: vec![0.0; n_machines],
            net_drop_p: vec![0.0; n_machines],
            client_policy,
            net_policy,
            summary: FaultSummary::default(),
        }
    }

    /// Appends a timeline entry.
    pub(crate) fn log(&mut self, t: SimTime, what: String) {
        self.summary.timeline.push(FaultTimelineEntry {
            t_s: t.as_secs_f64(),
            what,
        });
    }

    /// The summary with breaker trips folded in from the live policies.
    pub(crate) fn summary_snapshot(&self) -> FaultSummary {
        let mut s = self.summary.clone();
        s.breaker_trips = self
            .client_policy
            .iter()
            .flatten()
            .filter_map(|p| p.breaker.as_ref())
            .map(|b| b.trips)
            .sum();
        s
    }
}

/// Lowers a plan against name tables, producing the schedule and per-client
/// policies. `instances`, `machines`, `clients` map names to index order;
/// `pool_of` resolves an `(up, down)` instance-id pair to a pool id.
pub(crate) fn lower_plan(
    plan: &FaultPlan,
    instance_names: &[String],
    machine_names: &[String],
    client_names: &[String],
    mut pool_of: impl FnMut(InstanceId, InstanceId) -> Option<PoolId>,
) -> SimResult<(Vec<ScheduledFault>, Vec<Option<ClientPolicyRt>>)> {
    plan.validate()?;
    let cfg_err = |key: String, detail: String| SimError::Config {
        source_name: "faults.json".to_string(),
        detail: format!("{key}: {detail}"),
    };
    let find = |names: &[String], kind: &str, name: &str, key: String| -> SimResult<u32> {
        names
            .iter()
            .position(|n| n == name)
            .map(|i| i as u32)
            .ok_or_else(|| cfg_err(key, format!("unknown {kind} {name:?}")))
    };
    let mut schedule = Vec::with_capacity(plan.faults.len());
    for (i, f) in plan.faults.iter().enumerate() {
        let entry = match f {
            FaultSpec::InstanceCrash {
                instance,
                at_s,
                restart_after_s,
            } => {
                let id = find(
                    instance_names,
                    "instance",
                    instance,
                    format!("faults[{i}].instance"),
                )?;
                let at = SimTime::ZERO + SimDuration::from_secs_f64(*at_s);
                ScheduledFault {
                    fault: LoweredFault::Crash {
                        instance: InstanceId::from_raw(id),
                    },
                    at,
                    until: restart_after_s.map(|d| at + SimDuration::from_secs_f64(d)),
                }
            }
            FaultSpec::MachineSlowdown {
                machine,
                at_s,
                duration_s,
                factor,
            } => {
                let id = find(
                    machine_names,
                    "machine",
                    machine,
                    format!("faults[{i}].machine"),
                )?;
                let at = SimTime::ZERO + SimDuration::from_secs_f64(*at_s);
                ScheduledFault {
                    fault: LoweredFault::Slowdown {
                        machine: MachineId::from_raw(id),
                        factor: *factor,
                    },
                    at,
                    until: Some(at + SimDuration::from_secs_f64(*duration_s)),
                }
            }
            FaultSpec::NetworkDegrade {
                machine,
                at_s,
                duration_s,
                added_latency_s,
                drop_prob,
            } => {
                let id = find(
                    machine_names,
                    "machine",
                    machine,
                    format!("faults[{i}].machine"),
                )?;
                let at = SimTime::ZERO + SimDuration::from_secs_f64(*at_s);
                ScheduledFault {
                    fault: LoweredFault::NetDegrade {
                        machine: MachineId::from_raw(id),
                        added_s: *added_latency_s,
                        drop_prob: *drop_prob,
                    },
                    at,
                    until: Some(at + SimDuration::from_secs_f64(*duration_s)),
                }
            }
            FaultSpec::PoolLeak {
                up,
                down,
                at_s,
                leak,
                restore_after_s,
            } => {
                let up_id = find(instance_names, "instance", up, format!("faults[{i}].up"))?;
                let down_id = find(
                    instance_names,
                    "instance",
                    down,
                    format!("faults[{i}].down"),
                )?;
                let pool = pool_of(InstanceId::from_raw(up_id), InstanceId::from_raw(down_id))
                    .ok_or_else(|| {
                        cfg_err(
                            format!("faults[{i}].up"),
                            format!("no connection pool from {up:?} to {down:?}"),
                        )
                    })?;
                let at = SimTime::ZERO + SimDuration::from_secs_f64(*at_s);
                ScheduledFault {
                    fault: LoweredFault::PoolLeak { pool, leak: *leak },
                    at,
                    until: restore_after_s.map(|d| at + SimDuration::from_secs_f64(d)),
                }
            }
        };
        schedule.push(entry);
    }
    let mut client_policy: Vec<Option<ClientPolicyRt>> = vec![None; client_names.len()];
    for (i, p) in plan.policy.clients.iter().enumerate() {
        let id = find(
            client_names,
            "client",
            &p.client,
            format!("policy.clients[{i}].client"),
        )?;
        client_policy[id as usize] = Some(ClientPolicyRt::new(p));
    }
    Ok((schedule, client_policy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    fn t(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    #[test]
    fn plan_parses_every_fault_kind() {
        let text = r#"{
            "faults": [
                {"kind": "instance_crash", "instance": "api0", "at_s": 2.0,
                 "restart_after_s": 1.0},
                {"kind": "machine_slowdown", "machine": "m0", "at_s": 1.0,
                 "duration_s": 0.5, "factor": 3.0},
                {"kind": "network_degrade", "machine": "m0", "at_s": 3.0,
                 "duration_s": 1.0, "added_latency_s": 0.002, "drop_prob": 0.1},
                {"kind": "pool_leak", "up": "front0", "down": "api0",
                 "at_s": 4.0, "leak": 2}
            ],
            "policy": {
                "clients": [
                    {"client": "wrk", "max_retries": 2,
                     "retry_budget": {"capacity": 5.0, "fill_per_s": 1.0},
                     "breaker": {"failure_threshold": 4, "cooldown_s": 0.5}}
                ],
                "network": {"retransmit_limit": 2, "retransmit_backoff_s": 0.001}
            }
        }"#;
        let plan = FaultPlan::from_json(text).expect("plan parses");
        assert_eq!(plan.faults.len(), 4);
        assert_eq!(plan.policy.clients.len(), 1);
        let p = &plan.policy.clients[0];
        assert_eq!(p.max_retries, 2);
        assert_eq!(p.backoff_base_s, default_backoff_base(), "default applied");
        assert_eq!(plan.policy.network.unwrap().retransmit_limit, 2);
    }

    #[test]
    fn empty_plan_is_valid() {
        let plan = FaultPlan::from_json("{}").expect("empty plan");
        assert!(plan.faults.is_empty());
        assert!(plan.policy.clients.is_empty());
    }

    #[test]
    fn invalid_drop_prob_names_the_key() {
        let text = r#"{"faults": [{"kind": "network_degrade", "machine": "m0",
            "at_s": 0.0, "duration_s": 1.0, "drop_prob": 1.5}]}"#;
        let err = FaultPlan::from_json(text).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("faults.json"), "names the file: {msg}");
        assert!(msg.contains("faults[0].drop_prob"), "names the key: {msg}");
    }

    #[test]
    fn invalid_slowdown_factor_rejected() {
        let text = r#"{"faults": [{"kind": "machine_slowdown", "machine": "m0",
            "at_s": 0.0, "duration_s": 1.0, "factor": 0.5}]}"#;
        let msg = FaultPlan::from_json(text).unwrap_err().to_string();
        assert!(msg.contains("faults[0].factor"), "{msg}");
    }

    #[test]
    fn lowering_resolves_names_and_rejects_unknowns() {
        let plan = FaultPlan::from_json(
            r#"{"faults": [{"kind": "instance_crash", "instance": "api0", "at_s": 1.0}],
                "policy": {"clients": [{"client": "wrk"}]}}"#,
        )
        .unwrap();
        let instances = vec!["front0".to_string(), "api0".to_string()];
        let machines = vec!["m0".to_string()];
        let clients = vec!["wrk".to_string()];
        let (schedule, policies) =
            lower_plan(&plan, &instances, &machines, &clients, |_, _| None).unwrap();
        assert_eq!(schedule.len(), 1);
        assert_eq!(
            schedule[0].fault,
            LoweredFault::Crash {
                instance: InstanceId::from_raw(1)
            }
        );
        assert_eq!(schedule[0].at, t(1.0));
        assert!(schedule[0].until.is_none(), "no restart scheduled");
        assert!(policies[0].is_some());

        let bad = FaultPlan::from_json(
            r#"{"faults": [{"kind": "instance_crash", "instance": "nope", "at_s": 1.0}]}"#,
        )
        .unwrap();
        let msg = lower_plan(&bad, &instances, &machines, &clients, |_, _| None)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("faults.json"), "{msg}");
        assert!(msg.contains("faults[0].instance"), "{msg}");
        assert!(msg.contains("nope"), "{msg}");
    }

    #[test]
    fn unknown_pool_pair_is_contextual() {
        let plan = FaultPlan::from_json(
            r#"{"faults": [{"kind": "pool_leak", "up": "front0", "down": "api0",
                "at_s": 1.0, "leak": 1}]}"#,
        )
        .unwrap();
        let instances = vec!["front0".to_string(), "api0".to_string()];
        let msg = lower_plan(&plan, &instances, &[], &[], |_, _| None)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("no connection pool"), "{msg}");
    }

    #[test]
    fn budget_refills_and_caps() {
        let mut b = BudgetRt::new(RetryBudgetSpec {
            capacity: 2.0,
            fill_per_s: 1.0,
        });
        assert!(b.try_take(t(0.0)));
        assert!(b.try_take(t(0.0)));
        assert!(!b.try_take(t(0.0)), "bucket empty");
        assert!(b.try_take(t(1.0)), "one token refilled after 1s");
        // Long idle refills to capacity, not beyond.
        assert!(b.try_take(t(100.0)));
        assert!(b.try_take(t(100.0)));
        assert!(!b.try_take(t(100.0)));
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_and_cools_down() {
        let mut b = BreakerRt::new(BreakerSpec {
            failure_threshold: 3,
            cooldown_s: 1.0,
        });
        b.on_failure(t(0.0));
        b.on_failure(t(0.0));
        assert!(!b.is_open(t(0.0)));
        b.on_success();
        b.on_failure(t(0.1));
        b.on_failure(t(0.1));
        assert!(!b.is_open(t(0.1)), "success reset the streak");
        b.on_failure(t(0.2));
        assert!(b.is_open(t(0.2)), "third consecutive failure trips");
        assert_eq!(b.trips, 1);
        assert!(b.is_open(t(1.1)), "still inside cooldown");
        assert!(!b.is_open(t(1.3)), "cooldown expired");
    }

    #[test]
    fn policy_backoff_is_capped_exponential_with_jitter() {
        let spec = ClientPolicySpec {
            client: "c".into(),
            max_retries: 10,
            backoff_base_s: 0.01,
            backoff_cap_s: 0.05,
            jitter: 0.0,
            hedge_after_s: None,
            retry_budget: None,
            breaker: None,
        };
        let mut p = ClientPolicyRt::new(&spec);
        let mut rng = RngFactory::new(1).stream("fault", 0);
        let d0 = p.on_failure(t(0.0), 0, &mut rng).unwrap();
        let d2 = p.on_failure(t(0.0), 2, &mut rng).unwrap();
        let d9 = p.on_failure(t(0.0), 9, &mut rng).unwrap();
        assert!((d0.as_secs_f64() - 0.01).abs() < 1e-12);
        assert!((d2.as_secs_f64() - 0.04).abs() < 1e-12);
        assert!((d9.as_secs_f64() - 0.05).abs() < 1e-12, "capped");
        assert!(p.on_failure(t(0.0), 10, &mut rng).is_none(), "cap reached");
    }

    #[test]
    fn policy_retry_denied_when_budget_empty_or_breaker_open() {
        let spec = ClientPolicySpec {
            client: "c".into(),
            max_retries: 10,
            backoff_base_s: 0.01,
            backoff_cap_s: 1.0,
            jitter: 0.0,
            hedge_after_s: None,
            retry_budget: Some(RetryBudgetSpec {
                capacity: 1.0,
                fill_per_s: 0.0,
            }),
            breaker: Some(BreakerSpec {
                failure_threshold: 3,
                cooldown_s: 10.0,
            }),
        };
        let mut p = ClientPolicyRt::new(&spec);
        let mut rng = RngFactory::new(1).stream("fault", 0);
        assert!(p.on_failure(t(0.0), 0, &mut rng).is_some(), "budget has 1");
        assert!(p.on_failure(t(0.0), 0, &mut rng).is_none(), "budget empty");
        // Third consecutive failure opens the breaker; retries denied even
        // if budget were available.
        assert!(p.on_failure(t(0.0), 0, &mut rng).is_none());
        assert!(p.breaker_open(t(0.0)));
    }

    #[test]
    fn summary_snapshot_sums_breaker_trips() {
        let mut st = FaultState::new(
            RngFactory::new(7).stream("fault", 0),
            Vec::new(),
            2,
            1,
            vec![
                Some(ClientPolicyRt::new(&ClientPolicySpec {
                    client: "a".into(),
                    max_retries: 0,
                    backoff_base_s: 0.0,
                    backoff_cap_s: 0.0,
                    jitter: 0.0,
                    hedge_after_s: None,
                    retry_budget: None,
                    breaker: Some(BreakerSpec {
                        failure_threshold: 1,
                        cooldown_s: 1.0,
                    }),
                })),
                None,
            ],
            None,
        );
        if let Some(p) = st.client_policy[0].as_mut() {
            let mut rng = RngFactory::new(7).stream("fault", 1);
            let _ = p.on_failure(t(0.0), 0, &mut rng);
        }
        st.summary.dropped = 3;
        let snap = st.summary_snapshot();
        assert_eq!(snap.dropped, 3);
        assert_eq!(snap.breaker_trips, 1);
        assert!(!st.instance_down[0] && !st.instance_down[1]);
        assert_eq!(st.slow_factor, vec![1.0]);
    }
}
