//! One-shot "build, run, summarize" entry point.
//!
//! [`run_one`] is the unit of work the parallel sweep engine
//! (`uqsim_runner`) fans across threads: it takes a *scenario description*
//! (plain data, cheap to clone and [`Send`]), overrides the seed, builds a
//! fresh [`Simulator`](crate::sim::Simulator), runs it for a fixed simulated duration, and returns
//! a compact, `Send` summary. Because each call owns its simulator and the
//! scenario is immutable input, any number of `run_one` calls can execute
//! concurrently with byte-for-byte the results of running them serially.
//!
//! # Examples
//!
//! ```
//! use uqsim_core::run::run_one;
//! use uqsim_core::config::ScenarioConfig;
//! use uqsim_core::time::SimDuration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ScenarioConfig::from_json(uqsim_core::run::EXAMPLE_SCENARIO)?;
//! let result = run_one(&cfg, 7, SimDuration::from_millis(600))?;
//! assert_eq!(result.seed, 7);
//! assert!(result.completed > 0);
//! // Identical inputs replay identically — the invariant the parallel
//! // sweep runner's determinism guarantee is built on.
//! let again = run_one(&cfg, 7, SimDuration::from_millis(600))?;
//! assert_eq!(result.latency, again.latency);
//! # Ok(())
//! # }
//! ```

use crate::config::ScenarioConfig;
use crate::error::SimResult;
use crate::metrics::LatencySummary;
use crate::telemetry::{MetricsSnapshot, TelemetryConfig};
use crate::time::SimDuration;

/// A tiny self-contained scenario (one machine, one two-stage service, one
/// open-loop client) used by doc examples and smoke tests.
pub const EXAMPLE_SCENARIO: &str = r#"{
  "seed": 42,
  "warmup_s": 0.1,
  "machines": [
    { "name": "server0", "cores": 2,
      "dvfs": { "levels_ghz": [2.6] },
      "network": { "irq_cores": 1,
        "rx_time": { "type": "exponential", "mean": 0.0000166 },
        "wire_latency": { "type": "constant", "value": 0.00002 } } }
  ],
  "services": [
    { "name": "api",
      "stages": [
        { "name": "handler", "queue": { "type": "single" },
          "service": { "base": { "type": "constant", "value": 0.0 },
            "per_job": { "type": "exponential", "mean": 0.00008 },
            "ref_freq_ghz": 2.6, "freq_alpha": 1.0 } }
      ],
      "paths": [{ "name": "default", "stages": [0] }] }
  ],
  "instances": [
    { "name": "api0", "service": "api", "machine": "server0",
      "cores": 1, "exec": { "type": "simple" } }
  ],
  "pools": [],
  "request_types": [
    { "name": "get",
      "nodes": [
        { "name": "front",
          "target": { "type": "service", "service": "api",
            "instance": { "type": "fixed", "name": "api0" },
            "exec_path": "default" },
          "children": ["sink"] },
        { "name": "sink", "target": { "type": "client_sink" },
          "link": { "reply": { "of": "front" } } }
      ] }
  ],
  "clients": [
    { "name": "wrk", "connections": 64,
      "arrivals": { "type": "poisson",
        "schedule": { "segments": [[0.0, 2000.0]] } },
      "mix": [["get", 1.0]], "roots": ["api0"] }
  ]
}"#;

/// The summary one [`run_one`] call produces: everything the sweep
/// aggregator needs, and nothing tied to the (dropped) simulator state.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The master seed this replication ran under.
    pub seed: u64,
    /// Simulated duration (including warmup).
    pub duration: SimDuration,
    /// Warmup portion of `duration` excluded from the latency statistics.
    pub warmup: SimDuration,
    /// Requests generated (including warmup and in-flight).
    pub generated: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests that hit a client-side timeout.
    pub timeouts: u64,
    /// Post-warmup throughput, requests/second.
    pub achieved_qps: f64,
    /// End-to-end latency over post-warmup completions.
    pub latency: LatencySummary,
    /// Events the engine processed — the wall-clock cost proxy.
    pub events_processed: u64,
    /// Utilization and latency-decomposition summary (decomposition-only
    /// telemetry; see [`TelemetryConfig::default`]).
    pub metrics: MetricsSnapshot,
}

/// Builds `cfg` with its seed replaced by `seed`, runs it for `duration`
/// of simulated time, and summarizes.
///
/// This is the `Send`-safe unit of parallel execution: the input is plain
/// data, the simulator lives and dies inside the call, and the returned
/// [`RunResult`] is plain data again. Identical `(cfg, seed, duration)`
/// inputs produce identical results, on any thread, in any order.
///
/// # Errors
///
/// Propagates scenario-construction failures ([`ScenarioConfig::build`]).
pub fn run_one(cfg: &ScenarioConfig, seed: u64, duration: SimDuration) -> SimResult<RunResult> {
    let cfg = cfg.with_seed(seed);
    let mut sim = cfg.build()?;
    sim.enable_telemetry(TelemetryConfig::default());
    sim.run_for(duration);
    let latency = sim.latency_summary();
    let warmup = SimDuration::from_secs_f64(cfg.warmup_s);
    let measured = (duration.as_secs_f64() - cfg.warmup_s).max(f64::EPSILON);
    Ok(RunResult {
        seed,
        duration,
        warmup,
        generated: sim.generated(),
        completed: sim.completed(),
        timeouts: sim.timeouts(),
        achieved_qps: latency.count as f64 / measured,
        latency,
        events_processed: sim.events_processed(),
        metrics: sim.metrics_snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    /// The compile-time guarantee the parallel runner relies on: a built
    /// simulator (controllers included) can move across threads.
    #[test]
    fn simulator_and_run_result_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Simulator>();
        assert_send::<RunResult>();
        assert_send::<ScenarioConfig>();
    }

    #[test]
    fn run_one_is_deterministic_per_seed_and_divergent_across_seeds() {
        let cfg = ScenarioConfig::from_json(EXAMPLE_SCENARIO).unwrap();
        let d = SimDuration::from_millis(400);
        let a = run_one(&cfg, 1, d).unwrap();
        let b = run_one(&cfg, 1, d).unwrap();
        assert_eq!(a, b, "same seed must reproduce exactly");
        let c = run_one(&cfg, 2, d).unwrap();
        assert_ne!(a.latency, c.latency, "different seeds should diverge");
        assert!(a.completed > 0 && a.latency.count > 0);
    }

    #[test]
    fn run_one_runs_under_an_overridden_load() {
        let cfg = ScenarioConfig::from_json(EXAMPLE_SCENARIO).unwrap();
        let d = SimDuration::from_millis(400);
        let low = run_one(&cfg.with_offered_qps(500.0), 1, d).unwrap();
        let high = run_one(&cfg.with_offered_qps(4000.0), 1, d).unwrap();
        assert!(
            high.achieved_qps > 2.0 * low.achieved_qps,
            "offered-load override must change throughput: {} vs {}",
            low.achieved_qps,
            high.achieved_qps
        );
    }
}
