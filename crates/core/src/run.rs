//! One-shot "build, run, summarize" entry point.
//!
//! [`run_one`] is the unit of work the parallel sweep engine
//! (`uqsim_runner`) fans across threads: it takes a *scenario description*
//! (plain data, cheap to clone and [`Send`]), overrides the seed, builds a
//! fresh [`Simulator`](crate::sim::Simulator), runs it for a fixed simulated duration, and returns
//! a compact, `Send` summary. Because each call owns its simulator and the
//! scenario is immutable input, any number of `run_one` calls can execute
//! concurrently with byte-for-byte the results of running them serially.
//!
//! # Examples
//!
//! ```
//! use uqsim_core::run::run_one;
//! use uqsim_core::config::ScenarioConfig;
//! use uqsim_core::time::SimDuration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = ScenarioConfig::from_json(uqsim_core::run::EXAMPLE_SCENARIO)?;
//! let result = run_one(&cfg, 7, SimDuration::from_millis(600))?;
//! assert_eq!(result.seed, 7);
//! assert!(result.completed > 0);
//! // Identical inputs replay identically — the invariant the parallel
//! // sweep runner's determinism guarantee is built on.
//! let again = run_one(&cfg, 7, SimDuration::from_millis(600))?;
//! assert_eq!(result.latency, again.latency);
//! # Ok(())
//! # }
//! ```

use crate::config::ScenarioConfig;
use crate::error::SimResult;
use crate::fault::{FaultPlan, FaultSummary};
use crate::metrics::LatencySummary;
use crate::telemetry::{MetricsSnapshot, TelemetryConfig};
use crate::time::SimDuration;

/// A tiny self-contained scenario (one machine, one two-stage service, one
/// open-loop client) used by doc examples and smoke tests.
pub const EXAMPLE_SCENARIO: &str = r#"{
  "seed": 42,
  "warmup_s": 0.1,
  "machines": [
    { "name": "server0", "cores": 2,
      "dvfs": { "levels_ghz": [2.6] },
      "network": { "irq_cores": 1,
        "rx_time": { "type": "exponential", "mean": 0.0000166 },
        "wire_latency": { "type": "constant", "value": 0.00002 } } }
  ],
  "services": [
    { "name": "api",
      "stages": [
        { "name": "handler", "queue": { "type": "single" },
          "service": { "base": { "type": "constant", "value": 0.0 },
            "per_job": { "type": "exponential", "mean": 0.00008 },
            "ref_freq_ghz": 2.6, "freq_alpha": 1.0 } }
      ],
      "paths": [{ "name": "default", "stages": [0] }] }
  ],
  "instances": [
    { "name": "api0", "service": "api", "machine": "server0",
      "cores": 1, "exec": { "type": "simple" } }
  ],
  "pools": [],
  "request_types": [
    { "name": "get",
      "nodes": [
        { "name": "front",
          "target": { "type": "service", "service": "api",
            "instance": { "type": "fixed", "name": "api0" },
            "exec_path": "default" },
          "children": ["sink"] },
        { "name": "sink", "target": { "type": "client_sink" },
          "link": { "reply": { "of": "front" } } }
      ] }
  ],
  "clients": [
    { "name": "wrk", "connections": 64,
      "arrivals": { "type": "poisson",
        "schedule": { "segments": [[0.0, 2000.0]] } },
      "mix": [["get", 1.0]], "roots": ["api0"] }
  ]
}"#;

/// A fault plan sized for [`EXAMPLE_SCENARIO`]: the lone service instance
/// crashes and restarts mid-run, then its machine throttles, while the
/// client retries with a budget and a circuit breaker. Used by doc
/// examples and smoke tests that need fault activity without a config
/// file on disk.
pub const EXAMPLE_FAULTS: &str = r#"{
  "faults": [
    { "kind": "instance_crash", "instance": "api0",
      "at_s": 0.2, "restart_after_s": 0.15 },
    { "kind": "machine_slowdown", "machine": "server0",
      "at_s": 0.45, "duration_s": 0.1, "factor": 4.0 }
  ],
  "policy": {
    "clients": [
      { "client": "wrk", "max_retries": 3,
        "backoff_base_s": 0.002, "backoff_cap_s": 0.05, "jitter": 0.5,
        "retry_budget": { "capacity": 50.0, "fill_per_s": 25.0 },
        "breaker": { "failure_threshold": 20, "cooldown_s": 0.05 } }
    ]
  }
}"#;

/// The summary one [`run_one`] call produces: everything the sweep
/// aggregator needs, and nothing tied to the (dropped) simulator state.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The master seed this replication ran under.
    pub seed: u64,
    /// Simulated duration (including warmup).
    pub duration: SimDuration,
    /// Warmup portion of `duration` excluded from the latency statistics.
    pub warmup: SimDuration,
    /// Requests generated (including warmup and in-flight).
    pub generated: u64,
    /// Requests completed.
    pub completed: u64,
    /// Requests that hit a client-side timeout.
    pub timeouts: u64,
    /// Post-warmup throughput, requests/second.
    pub achieved_qps: f64,
    /// Post-warmup goodput, requests/second: within-deadline completions
    /// delivered at full fidelity (degraded quorum early-fires excluded).
    /// Equals `achieved_qps` when no faults are installed.
    pub goodput_qps: f64,
    /// Requests terminally dropped by an injected fault.
    pub dropped: u64,
    /// Requests shed at emission by an open circuit breaker.
    pub shed: u64,
    /// Retry emissions fired by client resilience policies.
    pub retried: u64,
    /// Responses delivered in degraded mode (sheds + quorum early-fires).
    pub degraded: u64,
    /// End-to-end latency over post-warmup completions. With a fault plan
    /// installed these are the *goodput percentiles*: timed-out and shed
    /// requests never enter this summary.
    pub latency: LatencySummary,
    /// Latency of timed-out requests at their deadline — what the client
    /// observed for its failed calls. Empty when nothing timed out.
    pub timeout_latency: LatencySummary,
    /// Events the engine processed — the wall-clock cost proxy.
    pub events_processed: u64,
    /// Utilization and latency-decomposition summary (decomposition-only
    /// telemetry; see [`TelemetryConfig::default`]).
    pub metrics: MetricsSnapshot,
    /// Fault-engine counters and fault-window timeline; `None` when the run
    /// had no fault plan.
    pub fault: Option<FaultSummary>,
    /// Critical-path contribution profile over the measured completions
    /// (see [`crate::critpath`]). Always `Some` for [`run_one`] /
    /// [`run_one_faulted`] runs (the streaming mode is on by default
    /// there); `None` when the simulator ran without it.
    pub critpath: Option<crate::critpath::CpcProfile>,
}

/// Builds `cfg` with its seed replaced by `seed`, runs it for `duration`
/// of simulated time, and summarizes.
///
/// This is the `Send`-safe unit of parallel execution: the input is plain
/// data, the simulator lives and dies inside the call, and the returned
/// [`RunResult`] is plain data again. Identical `(cfg, seed, duration)`
/// inputs produce identical results, on any thread, in any order.
///
/// # Errors
///
/// Propagates scenario-construction failures ([`ScenarioConfig::build`]).
pub fn run_one(cfg: &ScenarioConfig, seed: u64, duration: SimDuration) -> SimResult<RunResult> {
    run_one_faulted(cfg, None, seed, duration)
}

/// [`run_one`] with an optional fault plan installed before the clock
/// starts. `run_one(cfg, seed, d)` is exactly
/// `run_one_faulted(cfg, None, seed, d)`; passing `Some(plan)` schedules
/// the plan's fault windows and arms its per-client resilience policies.
///
/// Determinism extends to faulted runs: identical
/// `(cfg, plan, seed, duration)` inputs reproduce byte-identical results,
/// on any thread, in any order — the fault engine draws from its own
/// seed-derived RNG stream and never perturbs the simulation's other
/// streams.
///
/// # Errors
///
/// Propagates scenario-construction failures and fault-plan references to
/// unknown instances/machines/clients/pools
/// ([`Simulator::install_faults`](crate::sim::Simulator::install_faults)).
pub fn run_one_faulted(
    cfg: &ScenarioConfig,
    faults: Option<&FaultPlan>,
    seed: u64,
    duration: SimDuration,
) -> SimResult<RunResult> {
    let cfg = cfg.with_seed(seed);
    let mut sim = cfg.build()?;
    if let Some(plan) = faults {
        sim.install_faults(plan)?;
    }
    sim.enable_telemetry(TelemetryConfig {
        critpath: true,
        ..TelemetryConfig::default()
    });
    sim.run_for(duration);
    Ok(summarize(&sim, seed, duration, cfg.warmup_s))
}

/// Summarizes a finished simulator into a [`RunResult`]. Shared by
/// [`run_one_faulted`] and the partitioned engine
/// ([`crate::partition::run_partitioned`]), which must summarize each cell
/// with byte-for-byte the same arithmetic.
pub(crate) fn summarize(
    sim: &crate::sim::Simulator,
    seed: u64,
    duration: SimDuration,
    warmup_s: f64,
) -> RunResult {
    let latency = sim.latency_summary();
    let warmup = SimDuration::from_secs_f64(warmup_s);
    let measured = (duration.as_secs_f64() - warmup_s).max(f64::EPSILON);
    let good = (latency.count as u64).saturating_sub(sim.degraded_measured());
    RunResult {
        seed,
        duration,
        warmup,
        generated: sim.generated(),
        completed: sim.completed(),
        timeouts: sim.timeouts(),
        achieved_qps: latency.count as f64 / measured,
        goodput_qps: good as f64 / measured,
        dropped: sim.dropped(),
        shed: sim.shed(),
        retried: sim.retried(),
        degraded: sim.degraded(),
        latency,
        timeout_latency: sim.timeout_latency_summary(),
        events_processed: sim.events_processed(),
        metrics: sim.metrics_snapshot(),
        fault: sim.fault_summary(),
        critpath: sim.critpath_profile(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    /// The compile-time guarantee the parallel runner relies on: a built
    /// simulator (controllers included) can move across threads.
    #[test]
    fn simulator_and_run_result_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Simulator>();
        assert_send::<RunResult>();
        assert_send::<ScenarioConfig>();
    }

    #[test]
    fn run_one_is_deterministic_per_seed_and_divergent_across_seeds() {
        let cfg = ScenarioConfig::from_json(EXAMPLE_SCENARIO).unwrap();
        let d = SimDuration::from_millis(400);
        let a = run_one(&cfg, 1, d).unwrap();
        let b = run_one(&cfg, 1, d).unwrap();
        assert_eq!(a, b, "same seed must reproduce exactly");
        let c = run_one(&cfg, 2, d).unwrap();
        assert_ne!(a.latency, c.latency, "different seeds should diverge");
        assert!(a.completed > 0 && a.latency.count > 0);
    }

    #[test]
    fn unfaulted_runs_have_zero_fault_counters_and_goodput_equals_achieved() {
        let cfg = ScenarioConfig::from_json(EXAMPLE_SCENARIO).unwrap();
        let r = run_one(&cfg, 3, SimDuration::from_millis(400)).unwrap();
        assert_eq!(
            (r.dropped, r.shed, r.retried, r.degraded),
            (0, 0, 0, 0),
            "no fault plan, no fault activity"
        );
        assert!(r.fault.is_none());
        assert_eq!(r.timeout_latency.count, 0);
        assert_eq!(r.goodput_qps, r.achieved_qps);
    }

    #[test]
    fn faulted_run_is_deterministic_and_counts_fault_activity() {
        let cfg = ScenarioConfig::from_json(EXAMPLE_SCENARIO).unwrap();
        let plan = crate::fault::FaultPlan::from_json(EXAMPLE_FAULTS).unwrap();
        let d = SimDuration::from_millis(700);
        let a = run_one_faulted(&cfg, Some(&plan), 1, d).unwrap();
        let b = run_one_faulted(&cfg, Some(&plan), 1, d).unwrap();
        assert_eq!(a, b, "same (cfg, plan, seed) must reproduce exactly");
        let base = run_one(&cfg, 1, d).unwrap();
        assert!(
            a.dropped > 0,
            "the crash window should drop requests at the door"
        );
        assert!(
            a.retried > 0,
            "dropped requests should trigger the client retry policy"
        );
        assert!(a.fault.is_some());
        assert!(
            a.latency != base.latency,
            "a crash plus slowdown must perturb the latency distribution"
        );
    }

    #[test]
    fn run_one_runs_under_an_overridden_load() {
        let cfg = ScenarioConfig::from_json(EXAMPLE_SCENARIO).unwrap();
        let d = SimDuration::from_millis(400);
        let low = run_one(&cfg.with_offered_qps(500.0), 1, d).unwrap();
        let high = run_one(&cfg.with_offered_qps(4000.0), 1, d).unwrap();
        assert!(
            high.achieved_qps > 2.0 * low.achieved_qps,
            "offered-load override must change throughput: {} vs {}",
            low.achieved_qps,
            high.achieved_qps
        );
    }
}
