//! Live request/job state and recycling arenas.
//!
//! A **request** is one end-user operation traversing a request-type DAG. A
//! **job** is a request's visit to one path node (fan-out creates one job
//! per child). Both live in generation-checked arenas so that long
//! experiments (hundreds of millions of requests) run in bounded memory.

use crate::ids::{
    ClientId, ConnectionId, InstanceId, JobId, PathNodeId, RequestId, RequestTypeId, ThreadId,
};
use crate::time::SimTime;

/// Per-path-node bookkeeping within a live request.
#[derive(Debug, Clone, Default)]
pub struct NodeRuntime {
    /// Fan-in copies that have arrived so far.
    pub arrivals: u32,
    /// Connection that carried the request into this node (for replies).
    pub entry_conn: Option<ConnectionId>,
    /// Instance that executed the node.
    pub instance: Option<InstanceId>,
    /// Worker thread that executed the node.
    pub thread: Option<ThreadId>,
    /// When the (merged) job entered the node's instance.
    pub enter: Option<SimTime>,
    /// When the node's execution finished.
    pub exit: Option<SimTime>,
}

/// A live request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request's id (slot + generation).
    pub id: RequestId,
    /// Its request type.
    pub ty: RequestTypeId,
    /// Issuing client.
    pub client: ClientId,
    /// The client connection carrying it (fixed at launch).
    pub client_conn: Option<ConnectionId>,
    /// When the client generated the request (latency is measured from
    /// here, including any wait for a free client connection — the
    /// open-loop, coordinated-omission-free convention of wrk2).
    pub submitted: SimTime,
    /// Payload size in bytes (drives byte-proportional stage costs and
    /// wire transmission time).
    pub size_bytes: f64,
    /// When the request was actually written to its client connection.
    pub launched: Option<SimTime>,
    /// Per-node runtime state, one entry per DAG node.
    pub nodes: Vec<NodeRuntime>,
    /// Outstanding job copies (leak detection).
    pub live_jobs: u32,
    /// Set when the client-side timeout fired before completion.
    pub timed_out: bool,
    /// Retry generation: 0 for an original emission, `n` for the n-th retry.
    pub attempt: u32,
    /// Set when a fault killed at least one of the request's jobs.
    pub failed: bool,
    /// Set once the client-sink fan-in fired (the response is on its way or
    /// already delivered); a failed request with a fired sink still counts
    /// as completed.
    pub sink_fired: bool,
    /// Set once the request reached a terminal outcome (completed, dropped,
    /// or shed). A resolved request with live straggler jobs stays in the
    /// arena until they drain.
    pub resolved: bool,
    /// Set when the client connection was already released early (at the
    /// timeout deadline), so late delivery must not release it again.
    pub conn_released: bool,
    /// Set when a quorum/best-effort fan-in node fired before every parent
    /// copy arrived (straggler jobs may outlive sink delivery).
    pub early_fire: bool,
    /// The hedged duplicate (or original) paired with this request, if any.
    pub hedge_twin: Option<RequestId>,
    /// Set when the hedge twin completed first; this completion is counted
    /// but not measured.
    pub superseded: bool,
    /// Latency-decomposition frontier: everything before `mark` has already
    /// been attributed to a component. Advanced by
    /// `Simulator::attribute_latency`; starts at `submitted`.
    pub mark: SimTime,
    /// Nanoseconds attributed to each [`crate::telemetry::LatencyComponent`]
    /// so far. Because every charge advances `mark` to "now", the entries
    /// telescope: on completion they sum exactly to `completed - submitted`.
    pub components_ns: [u64; crate::telemetry::LatencyComponent::COUNT],
    /// Critical-path segments, one per non-zero telescoping charge, in
    /// charge order. Only populated while the streaming critical-path mode
    /// ([`crate::telemetry::TelemetryConfig::critpath`]) is on; empty
    /// otherwise.
    pub crit: Vec<crate::critpath::CritSeg>,
}

/// A live job: one request visiting one path node.
#[derive(Debug, Clone)]
pub struct Job {
    /// The job's id (slot + generation).
    pub id: JobId,
    /// Owning request.
    pub request: RequestId,
    /// The path node being visited.
    pub node: PathNodeId,
    /// Connection the job is traveling / arrived on.
    pub conn: Option<ConnectionId>,
    /// Chosen intra-service execution path index.
    pub exec_path: usize,
    /// Position within the execution path's stage list.
    pub stage_cursor: usize,
    /// Instance executing this job (set on delivery).
    pub instance: Option<InstanceId>,
    /// Thread executing this job (set on dispatch routing).
    pub thread: Option<ThreadId>,
    /// When the job entered its current wait/service state: set on enqueue
    /// (read at dispatch for per-stage queue-wait telemetry) and on dispatch
    /// (read at `StageDone` for per-stage service-time telemetry).
    pub state_since: SimTime,
    /// Network retransmissions already spent on this hop (fault-injection
    /// runs only; bounded by the network resilience policy).
    pub net_attempts: u8,
}

/// A generation-checked recycling arena.
///
/// Slots are reused after [`Arena::free`]; stale ids (older generation) are
/// detected on access in debug builds and by [`Arena::get`] returning
/// `None`.
#[derive(Debug)]
pub struct Arena<T> {
    // Generation and value share a slot so a lookup touches one cache line,
    // not two parallel vectors.
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

#[derive(Debug)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a slot, returning `(slot, generation)`.
    pub fn alloc_with(&mut self, make: impl FnOnce(u32, u32) -> T) -> (u32, u32) {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let generation = self.slots[slot as usize].generation;
            self.slots[slot as usize].value = Some(make(slot, generation));
            (slot, generation)
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                value: Some(make(slot, 0)),
            });
            (slot, 0)
        }
    }

    /// Returns the live value at `(slot, generation)`, or `None` if freed or
    /// recycled.
    #[inline]
    pub fn get(&self, slot: u32, generation: u32) -> Option<&T> {
        match self.slots.get(slot as usize) {
            Some(s) if s.generation == generation => s.value.as_ref(),
            _ => None,
        }
    }

    /// Mutable variant of [`Arena::get`].
    #[inline]
    pub fn get_mut(&mut self, slot: u32, generation: u32) -> Option<&mut T> {
        match self.slots.get_mut(slot as usize) {
            Some(s) if s.generation == generation => s.value.as_mut(),
            _ => None,
        }
    }

    /// Frees the slot, bumping its generation. Returns the value.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale or the slot already free.
    pub fn free(&mut self, slot: u32, generation: u32) -> T {
        let s = &mut self.slots[slot as usize];
        assert_eq!(s.generation, generation, "freeing with stale generation");
        let v = s.value.take().expect("double free");
        s.generation = generation.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        v
    }

    /// Number of live entries.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (capacity).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Request arena with typed ids.
///
/// Freed requests donate their `nodes` vector to a pool so steady-state
/// allocation reuses capacity instead of hitting the heap once per request.
#[derive(Debug, Default)]
pub struct RequestArena {
    arena: Arena<Request>,
    node_pool: Vec<Vec<NodeRuntime>>,
    crit_pool: Vec<Vec<crate::critpath::CritSeg>>,
}

impl RequestArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a request with `node_count` DAG nodes.
    pub fn alloc(
        &mut self,
        ty: RequestTypeId,
        client: ClientId,
        submitted: SimTime,
        node_count: usize,
    ) -> RequestId {
        let mut nodes = self.node_pool.pop().unwrap_or_default();
        nodes.clear();
        nodes.resize_with(node_count, NodeRuntime::default);
        let mut crit = self.crit_pool.pop().unwrap_or_default();
        crit.clear();
        let (slot, generation) = self.arena.alloc_with(|slot, generation| Request {
            id: RequestId::new(slot, generation),
            ty,
            client,
            client_conn: None,
            submitted,
            size_bytes: 0.0,
            launched: None,
            nodes,
            live_jobs: 0,
            timed_out: false,
            attempt: 0,
            failed: false,
            sink_fired: false,
            resolved: false,
            conn_released: false,
            early_fire: false,
            hedge_twin: None,
            superseded: false,
            mark: submitted,
            components_ns: [0; crate::telemetry::LatencyComponent::COUNT],
            crit,
        });
        RequestId::new(slot, generation)
    }

    /// Returns the request, or `None` if completed/recycled.
    pub fn get(&self, id: RequestId) -> Option<&Request> {
        self.arena.get(id.slot, id.generation)
    }

    /// Mutable access.
    pub fn get_mut(&mut self, id: RequestId) -> Option<&mut Request> {
        self.arena.get_mut(id.slot, id.generation)
    }

    /// Frees a completed request, reclaiming its node and critical-path
    /// segment vectors for reuse.
    ///
    /// # Panics
    ///
    /// Panics on stale ids or double free.
    pub fn free(&mut self, id: RequestId) -> Request {
        let mut req = self.arena.free(id.slot, id.generation);
        let mut nodes = std::mem::take(&mut req.nodes);
        nodes.clear();
        self.node_pool.push(nodes);
        let mut crit = std::mem::take(&mut req.crit);
        crit.clear();
        self.crit_pool.push(crit);
        req
    }

    /// Live request count.
    pub fn live(&self) -> usize {
        self.arena.live()
    }
}

/// Job arena with typed ids.
#[derive(Debug, Default)]
pub struct JobArena(Arena<Job>);

impl JobArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a job for `request` visiting `node`.
    pub fn alloc(&mut self, request: RequestId, node: PathNodeId) -> JobId {
        let (slot, generation) = self.0.alloc_with(|slot, generation| Job {
            id: JobId::new(slot, generation),
            request,
            node,
            conn: None,
            exec_path: 0,
            stage_cursor: 0,
            instance: None,
            thread: None,
            state_since: SimTime::ZERO,
            net_attempts: 0,
        });
        JobId::new(slot, generation)
    }

    /// Returns the job, or `None` if freed/recycled.
    pub fn get(&self, id: JobId) -> Option<&Job> {
        self.0.get(id.slot, id.generation)
    }

    /// Mutable access.
    pub fn get_mut(&mut self, id: JobId) -> Option<&mut Job> {
        self.0.get_mut(id.slot, id.generation)
    }

    /// Frees a finished job.
    ///
    /// # Panics
    ///
    /// Panics on stale ids or double free.
    pub fn free(&mut self, id: JobId) -> Job {
        self.0.free(id.slot, id.generation)
    }

    /// Live job count.
    pub fn live(&self) -> usize {
        self.0.live()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_alloc_get_free() {
        let mut a: Arena<u32> = Arena::new();
        let (s, g) = a.alloc_with(|_, _| 42);
        assert_eq!(a.get(s, g), Some(&42));
        assert_eq!(a.live(), 1);
        assert_eq!(a.free(s, g), 42);
        assert_eq!(a.live(), 0);
        assert_eq!(a.get(s, g), None, "freed slot is unreachable via old id");
    }

    #[test]
    fn arena_recycles_with_new_generation() {
        let mut a: Arena<u32> = Arena::new();
        let (s0, g0) = a.alloc_with(|_, _| 1);
        a.free(s0, g0);
        let (s1, g1) = a.alloc_with(|_, _| 2);
        assert_eq!(s1, s0, "slot reused");
        assert_ne!(g1, g0, "generation bumped");
        assert_eq!(a.get(s0, g0), None);
        assert_eq!(a.get(s1, g1), Some(&2));
        assert_eq!(a.capacity(), 1);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn arena_double_free_panics() {
        let mut a: Arena<u32> = Arena::new();
        let (s, g) = a.alloc_with(|_, _| 1);
        a.free(s, g);
        a.free(s, g);
    }

    #[test]
    fn request_arena_typed_ids() {
        let mut reqs = RequestArena::new();
        let id = reqs.alloc(
            RequestTypeId::from_raw(0),
            ClientId::from_raw(1),
            SimTime::from_nanos(5),
            3,
        );
        let r = reqs.get(id).unwrap();
        assert_eq!(r.nodes.len(), 3);
        assert_eq!(r.submitted.as_nanos(), 5);
        assert_eq!(r.id, id);
        reqs.free(id);
        assert!(reqs.get(id).is_none());
    }

    #[test]
    fn job_arena_typed_ids() {
        let mut reqs = RequestArena::new();
        let rid = reqs.alloc(
            RequestTypeId::from_raw(0),
            ClientId::from_raw(0),
            SimTime::ZERO,
            1,
        );
        let mut jobs = JobArena::new();
        let jid = jobs.alloc(rid, PathNodeId::from_raw(0));
        assert_eq!(jobs.get(jid).unwrap().request, rid);
        assert_eq!(jobs.live(), 1);
        jobs.free(jid);
        assert_eq!(jobs.live(), 0);
    }

    #[test]
    fn many_alloc_free_cycles_bound_capacity() {
        let mut jobs = JobArena::new();
        let mut reqs = RequestArena::new();
        let rid = reqs.alloc(
            RequestTypeId::from_raw(0),
            ClientId::from_raw(0),
            SimTime::ZERO,
            1,
        );
        for _ in 0..10_000 {
            let a = jobs.alloc(rid, PathNodeId::from_raw(0));
            let b = jobs.alloc(rid, PathNodeId::from_raw(0));
            jobs.free(a);
            jobs.free(b);
        }
        assert!(
            jobs.0.capacity() <= 2,
            "capacity grew: {}",
            jobs.0.capacity()
        );
    }
}
