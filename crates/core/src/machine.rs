//! Server machines: cores, DVFS levels, and network-processing resources.
//!
//! Mirrors `machines.json` (Table I) and the validation platform (Table II:
//! 2×10-core Xeon E5-2660 v3, DVFS 1.2–2.6 GHz).

use crate::dist::Distribution;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Who a core is dedicated to. The paper pins every thread/process to a
/// dedicated physical core, and dedicates separate cores to network
/// interrupt processing (`soft_irq`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum CoreOwner {
    /// Not yet allocated.
    #[default]
    Free,
    /// Allocated to the instance with this arena index.
    Instance(u32),
    /// Allocated to the machine's network-processing service.
    Network,
}

/// Runtime state of one core.
#[derive(Debug, Clone)]
pub struct Core {
    /// Current DVFS frequency, GHz.
    pub freq_ghz: f64,
    /// Owner of the core.
    pub owner: CoreOwner,
    /// Whether the core is currently executing work.
    pub busy: bool,
    /// Identity of the last (instance, thread) that ran here, for context
    /// switch accounting. Thread index is instance-local.
    pub last_thread: Option<(u32, u32)>,
    /// Accumulated busy nanoseconds (utilization accounting).
    pub busy_ns: u64,
    /// Accumulated dynamic energy, joules (cubic-in-frequency model).
    pub dyn_energy_j: f64,
}

/// A snapshot of the cluster's accumulated busy-nanosecond counters at one
/// instant. The `busy_ns` accumulators only ever grow, so utilization over
/// an interval `[checkpoint, now]` is `(busy_now - busy_checkpoint) /
/// (cores · (now - checkpoint))`. The builder records one checkpoint at
/// the warmup boundary and the telemetry sampler records one per tick,
/// which is what lets `instance_utilization_since` exclude warmup without
/// retro-computing anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UtilCheckpoint {
    /// When the checkpoint was taken.
    pub t: SimTime,
    /// Per-instance busy nanoseconds, summed over each instance's cores.
    pub inst_busy_ns: Vec<u64>,
    /// Per-machine busy nanoseconds, summed over each machine's irq cores.
    pub irq_busy_ns: Vec<u64>,
}

/// DVFS capability of a machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsSpec {
    /// Allowed frequency levels in GHz, ascending.
    pub levels_ghz: Vec<f64>,
}

impl DvfsSpec {
    /// A fixed-frequency machine.
    pub fn fixed(freq_ghz: f64) -> Self {
        DvfsSpec {
            levels_ghz: vec![freq_ghz],
        }
    }

    /// Levels from `min` to `max` in steps of `step` (all GHz), like the
    /// validation platform's 1.2–2.6 GHz range.
    pub fn range(min: f64, max: f64, step: f64) -> Self {
        let mut levels = Vec::new();
        let mut f = min;
        while f <= max + 1e-9 {
            levels.push((f * 1000.0).round() / 1000.0);
            f += step;
        }
        DvfsSpec { levels_ghz: levels }
    }

    /// Highest level.
    pub fn max_ghz(&self) -> f64 {
        *self.levels_ghz.last().expect("dvfs has levels")
    }

    /// Lowest level.
    pub fn min_ghz(&self) -> f64 {
        *self.levels_ghz.first().expect("dvfs has levels")
    }

    /// Snaps an arbitrary frequency to the nearest allowed level.
    pub fn snap(&self, freq_ghz: f64) -> f64 {
        self.levels_ghz
            .iter()
            .copied()
            .min_by(|a, b| {
                (a - freq_ghz)
                    .abs()
                    .partial_cmp(&(b - freq_ghz).abs())
                    .expect("frequencies are finite")
            })
            .expect("dvfs has levels")
    }

    /// The next level strictly below `freq_ghz`, if any.
    pub fn step_down(&self, freq_ghz: f64) -> Option<f64> {
        self.levels_ghz
            .iter()
            .copied()
            .rev()
            .find(|&f| f < freq_ghz - 1e-9)
    }

    /// The next level strictly above `freq_ghz`, if any.
    pub fn step_up(&self, freq_ghz: f64) -> Option<f64> {
        self.levels_ghz
            .iter()
            .copied()
            .find(|&f| f > freq_ghz + 1e-9)
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a message if empty, non-ascending, or non-positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.levels_ghz.is_empty() {
            return Err("dvfs has no levels".into());
        }
        let mut prev = 0.0;
        for &f in &self.levels_ghz {
            if !(f.is_finite() && f > prev) {
                return Err(format!("dvfs levels must be positive ascending, got {f}"));
            }
            prev = f;
        }
        Ok(())
    }
}

/// Network-processing configuration of one machine.
///
/// Every machine runs a standalone network-processing service through which
/// inbound traffic passes before reaching colocated microservices (§III-B:
/// "each server is coupled with a network processing process ... all
/// microservices deployed on the same server share the processes handling
/// interrupts"). Saturating these cores is what caps the 16-way load
/// balancing experiment at 120 kQPS (§IV-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Cores dedicated to interrupt processing. Zero disables the network
    /// service: packets pass through with only wire latency.
    pub irq_cores: usize,
    /// Per-request receive-side interrupt-processing time, seconds. This is
    /// the *aggregate* soft-irq work one application-level message causes
    /// (several TCP segments, ACKs, socket wakeups).
    pub rx_time: Distribution,
    /// One-way wire latency to any other machine, seconds.
    pub wire_latency: Distribution,
    /// Latency of a same-machine (loopback) hop, which bypasses the irq
    /// cores entirely, seconds.
    #[serde(default = "default_loopback")]
    pub loopback_latency: Distribution,
    /// NIC bandwidth in Gbit/s; adds `bytes * 8 / bandwidth` of
    /// transmission time to cross-machine hops. `None` models an
    /// infinitely fast link (Table II's platform has a 1 Gbps NIC).
    #[serde(default)]
    pub bandwidth_gbps: Option<f64>,
}

fn default_loopback() -> Distribution {
    Distribution::constant(5e-6)
}

impl NetworkSpec {
    /// A passthrough network: no irq cores, a constant wire latency.
    pub fn passthrough(wire_latency_s: f64) -> Self {
        NetworkSpec {
            irq_cores: 0,
            rx_time: Distribution::constant(0.0),
            wire_latency: Distribution::constant(wire_latency_s),
            loopback_latency: default_loopback(),
            bandwidth_gbps: None,
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns the first invalid distribution's description.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(bw) = self.bandwidth_gbps {
            if !(bw.is_finite() && bw > 0.0) {
                return Err(format!("bandwidth_gbps must be positive, got {bw}"));
            }
        }
        self.rx_time.validate()?;
        self.wire_latency.validate()?;
        self.loopback_latency.validate()
    }
}

/// Per-core power model: `P(f) = idle_w + dyn_w · (f / f_max)³` while
/// active, `idle_w` otherwise. The cubic dynamic term is the classic
/// CMOS `P ∝ C·V²·f` with voltage tracking frequency — the reason DVFS
/// saves energy at all (§V-B's motivation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static (leakage + uncore share) power per core, watts.
    pub idle_w: f64,
    /// Dynamic power per core at the maximum frequency, watts.
    pub dyn_w: f64,
}

impl Default for PowerModel {
    /// Roughly an E5-2660 v3: ≈105 W TDP over 10 cores, one-third static.
    fn default() -> Self {
        PowerModel {
            idle_w: 2.5,
            dyn_w: 7.5,
        }
    }
}

impl PowerModel {
    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns a message on negative or non-finite terms.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [("idle_w", self.idle_w), ("dyn_w", self.dyn_w)] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be non-negative, got {v}"));
            }
        }
        Ok(())
    }

    /// Dynamic power at `freq_ghz` given the machine's `max_ghz`, watts.
    pub fn dynamic_power_w(&self, freq_ghz: f64, max_ghz: f64) -> f64 {
        self.dyn_w * (freq_ghz / max_ghz).powi(3)
    }
}

/// Static description of a machine (one record of `machines.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Machine name.
    pub name: String,
    /// Number of usable physical cores.
    pub cores: usize,
    /// DVFS capability.
    pub dvfs: DvfsSpec,
    /// Network processing configuration.
    pub network: NetworkSpec,
    /// Per-core power model.
    #[serde(default)]
    pub power: PowerModel,
}

impl MachineSpec {
    /// A machine like the paper's validation platform (Table II), with the
    /// given usable core count: DVFS 1.2–2.6 GHz in 0.1 GHz steps, 4 irq
    /// cores, ~20 µs one-way wire latency, and ~16.6 µs of aggregate
    /// receive-side interrupt work per application message (calibrated so
    /// four irq cores saturate near 120 kQPS of combined inbound traffic,
    /// the soft-irq ceiling §IV-B reports for 16-way load balancing).
    pub fn xeon(name: impl Into<String>, cores: usize) -> Self {
        MachineSpec {
            name: name.into(),
            cores,
            dvfs: DvfsSpec::range(1.2, 2.6, 0.1),
            network: NetworkSpec {
                irq_cores: 4,
                rx_time: Distribution::exponential(16.6e-6),
                wire_latency: Distribution::constant(20e-6),
                loopback_latency: default_loopback(),
                bandwidth_gbps: Some(1.0),
            },
            power: PowerModel::default(),
        }
    }

    /// A machine with kernel-bypass (DPDK-style) networking — the paper's
    /// stated future work: no irq cores, a small constant per-message
    /// software cost folded into the wire latency, full bandwidth.
    pub fn xeon_dpdk(name: impl Into<String>, cores: usize) -> Self {
        let mut m = Self::xeon(name, cores);
        m.network = NetworkSpec {
            irq_cores: 0,
            rx_time: Distribution::constant(0.0),
            // ~1.5us of poll-mode driver work replaces the interrupt path.
            wire_latency: Distribution::constant(20e-6 + 1.5e-6),
            loopback_latency: default_loopback(),
            bandwidth_gbps: Some(1.0),
        };
        m
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a message naming the machine and the invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err(format!("machine {}: zero cores", self.name));
        }
        if self.network.irq_cores > self.cores {
            return Err(format!(
                "machine {}: {} irq cores exceed {} total cores",
                self.name, self.network.irq_cores, self.cores
            ));
        }
        self.dvfs
            .validate()
            .map_err(|e| format!("machine {}: {e}", self.name))?;
        self.power
            .validate()
            .map_err(|e| format!("machine {}: {e}", self.name))?;
        self.network
            .validate()
            .map_err(|e| format!("machine {}: {e}", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dvfs_range_builds_levels() {
        let d = DvfsSpec::range(1.2, 2.6, 0.1);
        assert_eq!(d.levels_ghz.len(), 15);
        assert_eq!(d.min_ghz(), 1.2);
        assert_eq!(d.max_ghz(), 2.6);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn dvfs_snap_picks_nearest() {
        let d = DvfsSpec::range(1.2, 2.6, 0.2);
        assert!((d.snap(1.29) - 1.2).abs() < 1e-9);
        assert!((d.snap(1.31) - 1.4).abs() < 1e-9);
        assert!((d.snap(99.0) - 2.6).abs() < 1e-9);
        assert!((d.snap(0.1) - 1.2).abs() < 1e-9);
    }

    #[test]
    fn dvfs_step_up_down() {
        let d = DvfsSpec::range(1.2, 1.6, 0.2);
        assert_eq!(d.step_down(1.2), None);
        assert!((d.step_down(1.4).unwrap() - 1.2).abs() < 1e-9);
        assert!((d.step_up(1.4).unwrap() - 1.6).abs() < 1e-9);
        assert_eq!(d.step_up(1.6), None);
    }

    #[test]
    fn dvfs_validation() {
        assert!(DvfsSpec { levels_ghz: vec![] }.validate().is_err());
        assert!(DvfsSpec {
            levels_ghz: vec![2.0, 1.0]
        }
        .validate()
        .is_err());
        assert!(DvfsSpec {
            levels_ghz: vec![-1.0]
        }
        .validate()
        .is_err());
        assert!(DvfsSpec::fixed(2.6).validate().is_ok());
    }

    #[test]
    fn machine_validation() {
        let m = MachineSpec::xeon("m0", 20);
        assert!(m.validate().is_ok());
        let mut bad = m.clone();
        bad.cores = 0;
        assert!(bad.validate().is_err());
        let mut bad = m.clone();
        bad.network.irq_cores = 21;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn passthrough_network_is_valid() {
        assert!(NetworkSpec::passthrough(10e-6).validate().is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let m = MachineSpec::xeon("m0", 20);
        let json = serde_json::to_string(&m).unwrap();
        let back: MachineSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn power_model_is_cubic() {
        let p = PowerModel {
            idle_w: 2.0,
            dyn_w: 8.0,
        };
        assert!((p.dynamic_power_w(2.6, 2.6) - 8.0).abs() < 1e-12);
        assert!((p.dynamic_power_w(1.3, 2.6) - 1.0).abs() < 1e-12);
        assert!(p.validate().is_ok());
        assert!(PowerModel {
            idle_w: -1.0,
            dyn_w: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn dpdk_machine_has_no_irq_cores() {
        let m = MachineSpec::xeon_dpdk("m", 8);
        assert!(m.validate().is_ok());
        assert_eq!(m.network.irq_cores, 0);
    }
}
