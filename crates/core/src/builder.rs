//! Programmatic scenario construction.
//!
//! [`ScenarioBuilder`] is the in-code equivalent of the paper's JSON inputs
//! (Table I): register machines, service models, deployed instances,
//! connection pools, request-type DAGs, and clients, then [`build`] a
//! runnable [`Simulator`]. The JSON front-end in [`crate::config`] lowers
//! parsed files onto this same builder.
//!
//! [`build`]: ScenarioBuilder::build

use crate::client::ClientSpec;
use crate::connection::{Connection, ConnectionPool, UpEndpoint};
use crate::error::{SimError, SimResult};
use crate::event::EventKind;
use crate::ids::{
    ClientId, ConnectionId, InstanceId, MachineId, PoolId, RequestTypeId, ServiceId, ThreadId,
};
use crate::job::{JobArena, RequestArena};
use crate::machine::{Core, CoreOwner, MachineSpec};
use crate::metrics::{LatencyRecorder, WindowedRecorder};
use crate::path::{InstanceSelect, NodeTarget, RequestType};
use crate::queue::StageQueue;
use crate::rng::RngFactory;
use crate::service::ServiceModel;
use crate::sim::{ClientRt, ExecModel, InstanceRt, MachineRt, SimConfig, Simulator, ThreadRt};
use crate::time::{SimDuration, SimTime};

/// Execution-model choice for a deployed instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecSpec {
    /// One implicit worker per core, shared stage queues.
    Simple,
    /// `threads` worker threads contending for the instance's cores.
    MultiThreaded {
        /// Number of worker threads.
        threads: usize,
        /// Context-switch penalty when a core changes thread.
        ctx_switch: SimDuration,
    },
}

#[derive(Debug, Clone)]
struct InstanceDef {
    name: String,
    service: ServiceId,
    machine: MachineId,
    cores: usize,
    exec: ExecSpec,
}

#[derive(Debug, Clone)]
struct PoolDef {
    up: InstanceId,
    down: InstanceId,
    size: usize,
}

#[derive(Debug, Clone)]
struct ClientDef {
    spec: ClientSpec,
    roots: Vec<InstanceId>,
}

/// Builder for a complete simulation scenario.
///
/// # Examples
///
/// ```
/// use uqsim_core::builder::{ExecSpec, ScenarioBuilder};
/// use uqsim_core::client::ClientSpec;
/// use uqsim_core::dist::Distribution;
/// use uqsim_core::machine::{MachineSpec, NetworkSpec, DvfsSpec};
/// use uqsim_core::path::{PathNodeSpec, RequestType};
/// use uqsim_core::ids::PathNodeId;
/// use uqsim_core::service::{ExecPath, ServiceModel};
/// use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};
/// use uqsim_core::ids::StageId;
/// use uqsim_core::time::SimDuration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ScenarioBuilder::new(42);
/// let m = b.add_machine(MachineSpec {
///     name: "m0".into(),
///     cores: 4,
///     dvfs: DvfsSpec::fixed(2.6),
///     network: NetworkSpec::passthrough(10e-6),
///     power: Default::default(),
/// });
/// let svc = b.add_service(ServiceModel::new(
///     "echo",
///     vec![StageSpec::new(
///         "proc",
///         QueueDiscipline::Single,
///         ServiceTimeModel::per_job(Distribution::exponential(100e-6), 2.6),
///     )],
///     vec![ExecPath::new("only", vec![StageId::from_raw(0)])],
/// ));
/// let inst = b.add_instance("echo0", svc, m, 1, ExecSpec::Simple)?;
/// let mut node = PathNodeSpec::request("echo", svc, inst);
/// node.children = vec![PathNodeId::from_raw(1)];
/// let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
/// let ty = b.add_request_type(RequestType::new("echo", vec![node, sink], PathNodeId::from_raw(0)))?;
/// b.add_client(ClientSpec::open_loop("c", 1000.0, 64, ty), vec![inst]);
/// let mut sim = b.build()?;
/// sim.run_for(SimDuration::from_secs(2));
/// assert!(sim.completed() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ScenarioBuilder {
    cfg: SimConfig,
    machines: Vec<MachineSpec>,
    services: Vec<ServiceModel>,
    instances: Vec<InstanceDef>,
    pools: Vec<PoolDef>,
    request_types: Vec<RequestType>,
    clients: Vec<ClientDef>,
}

impl ScenarioBuilder {
    /// Creates a builder with the given master seed.
    pub fn new(seed: u64) -> Self {
        ScenarioBuilder {
            cfg: SimConfig {
                seed,
                ..SimConfig::default()
            },
            machines: Vec::new(),
            services: Vec::new(),
            instances: Vec::new(),
            pools: Vec::new(),
            request_types: Vec::new(),
            clients: Vec::new(),
        }
    }

    /// Sets the latency warmup period (default 1 s).
    pub fn warmup(&mut self, warmup: SimDuration) -> &mut Self {
        self.cfg.warmup = warmup;
        self
    }

    /// Enables windowed latency collection with the given window width.
    pub fn window(&mut self, width: SimDuration) -> &mut Self {
        self.cfg.window = Some(width);
        self
    }

    /// Registers a machine.
    pub fn add_machine(&mut self, spec: MachineSpec) -> MachineId {
        let id = MachineId::from_raw(self.machines.len() as u32);
        self.machines.push(spec);
        id
    }

    /// Registers a reusable service model.
    pub fn add_service(&mut self, model: ServiceModel) -> ServiceId {
        let id = ServiceId::from_raw(self.services.len() as u32);
        self.services.push(model);
        id
    }

    /// Deploys an instance of `service` on `machine` with `cores` dedicated
    /// cores.
    ///
    /// # Errors
    ///
    /// Returns an error if ids are out of range or parameters are zero.
    pub fn add_instance(
        &mut self,
        name: impl Into<String>,
        service: ServiceId,
        machine: MachineId,
        cores: usize,
        exec: ExecSpec,
    ) -> SimResult<InstanceId> {
        let name = name.into();
        if service.index() >= self.services.len() {
            return Err(SimError::UnknownEntity {
                kind: "service",
                name: service.to_string(),
            });
        }
        if machine.index() >= self.machines.len() {
            return Err(SimError::UnknownEntity {
                kind: "machine",
                name: machine.to_string(),
            });
        }
        if cores == 0 {
            return Err(SimError::InvalidScenario(format!(
                "instance {name}: zero cores"
            )));
        }
        if let ExecSpec::MultiThreaded { threads, .. } = exec {
            if threads == 0 {
                return Err(SimError::InvalidScenario(format!(
                    "instance {name}: zero threads"
                )));
            }
        }
        let id = InstanceId::from_raw(self.instances.len() as u32);
        self.instances.push(InstanceDef {
            name,
            service,
            machine,
            cores,
            exec,
        });
        Ok(id)
    }

    /// Creates a fixed-size connection pool from `up` to `down`.
    ///
    /// # Errors
    ///
    /// Returns an error on unknown instances, a zero size, or a duplicate
    /// pool for the same pair.
    pub fn add_pool(&mut self, up: InstanceId, down: InstanceId, size: usize) -> SimResult<PoolId> {
        if up.index() >= self.instances.len() || down.index() >= self.instances.len() {
            return Err(SimError::UnknownEntity {
                kind: "instance",
                name: format!("pool {up} -> {down}"),
            });
        }
        if size == 0 {
            return Err(SimError::InvalidScenario(format!(
                "pool {up} -> {down}: zero size"
            )));
        }
        if self.pools.iter().any(|p| p.up == up && p.down == down) {
            return Err(SimError::InvalidScenario(format!(
                "duplicate pool {up} -> {down}"
            )));
        }
        let id = PoolId::from_raw(self.pools.len() as u32);
        self.pools.push(PoolDef { up, down, size });
        Ok(id)
    }

    /// Registers a request type, validating its DAG.
    ///
    /// # Errors
    ///
    /// Returns an error if the DAG is structurally invalid.
    pub fn add_request_type(&mut self, mut ty: RequestType) -> SimResult<RequestTypeId> {
        ty.validate().map_err(SimError::InvalidScenario)?;
        let id = RequestTypeId::from_raw(self.request_types.len() as u32);
        self.request_types.push(ty);
        Ok(id)
    }

    /// Registers a client whose connections target `roots` round-robin.
    pub fn add_client(&mut self, spec: ClientSpec, roots: Vec<InstanceId>) -> ClientId {
        let id = ClientId::from_raw(self.clients.len() as u32);
        self.clients.push(ClientDef { spec, roots });
        id
    }

    /// Validates everything and constructs the runnable simulator.
    ///
    /// # Errors
    ///
    /// Returns an error on any inconsistency: invalid specs, core
    /// over-subscription, dangling references, or empty scenarios.
    pub fn build(&self) -> SimResult<Simulator> {
        if self.instances.is_empty() {
            return Err(SimError::InvalidScenario("no instances deployed".into()));
        }
        for m in &self.machines {
            m.validate().map_err(SimError::InvalidScenario)?;
        }
        for s in &self.services {
            s.validate().map_err(SimError::InvalidScenario)?;
        }
        for c in &self.clients {
            c.spec.validate().map_err(SimError::InvalidScenario)?;
            if c.roots.is_empty() {
                return Err(SimError::InvalidScenario(format!(
                    "client {}: no root instances",
                    c.spec.name
                )));
            }
            for &r in &c.roots {
                if r.index() >= self.instances.len() {
                    return Err(SimError::UnknownEntity {
                        kind: "instance",
                        name: r.to_string(),
                    });
                }
            }
            for &(ty, _) in &c.spec.mix.entries {
                if ty.index() >= self.request_types.len() {
                    return Err(SimError::UnknownEntity {
                        kind: "request type",
                        name: ty.to_string(),
                    });
                }
            }
        }
        self.validate_request_types()?;

        // --- machines & core allocation -------------------------------
        let mut machines: Vec<MachineRt> = self
            .machines
            .iter()
            .map(|spec| {
                let cores = (0..spec.cores)
                    .map(|_| Core {
                        freq_ghz: spec.dvfs.max_ghz(),
                        owner: CoreOwner::Free,
                        busy: false,
                        last_thread: None,
                        busy_ns: 0,
                        dyn_energy_j: 0.0,
                    })
                    .collect::<Vec<_>>();
                let irq_cores: Vec<usize> = (0..spec.network.irq_cores).collect();
                let net_slots = vec![None; irq_cores.len()];
                MachineRt {
                    max_ghz: spec.dvfs.max_ghz(),
                    spec: spec.clone(),
                    cores,
                    irq_cores,
                    net_queue: std::collections::VecDeque::new(),
                    net_slots,
                    net_packets: 0,
                }
            })
            .collect();
        for m in &mut machines {
            for &c in &m.irq_cores {
                m.cores[c].owner = CoreOwner::Network;
            }
        }

        // --- instances -------------------------------------------------
        let mut next_free_core: Vec<usize> = machines.iter().map(|m| m.irq_cores.len()).collect();
        let mut instances: Vec<InstanceRt> = Vec::with_capacity(self.instances.len());
        for (idx, def) in self.instances.iter().enumerate() {
            let mi = def.machine.index();
            let first = next_free_core[mi];
            let last = first + def.cores;
            if last > machines[mi].cores.len() {
                return Err(SimError::InvalidScenario(format!(
                    "machine {} out of cores for instance {} (needs {}, {} free)",
                    machines[mi].spec.name,
                    def.name,
                    def.cores,
                    machines[mi].cores.len() - first
                )));
            }
            let cores: Vec<usize> = (first..last).collect();
            next_free_core[mi] = last;
            for &c in &cores {
                machines[mi].cores[c].owner = CoreOwner::Instance(idx as u32);
            }
            let svc = &self.services[def.service.index()];
            let (exec, thread_count, shared) = match def.exec {
                ExecSpec::Simple => (ExecModel::Simple, def.cores, true),
                ExecSpec::MultiThreaded {
                    threads,
                    ctx_switch,
                } => (
                    ExecModel::MultiThreaded {
                        ctx_switch_ns: ctx_switch.as_nanos(),
                    },
                    threads,
                    false,
                ),
            };
            let set_count = if shared { 1 } else { thread_count };
            let queue_sets = (0..set_count)
                .map(|_| {
                    crate::queue::StageQueueSet::new(
                        svc.stages
                            .iter()
                            .map(|s| StageQueue::new(s.queue))
                            .collect(),
                    )
                })
                .collect();
            let threads = (0..thread_count)
                .map(|t| ThreadRt {
                    running: None,
                    block_depth: 0,
                    queue_set: if shared { 0 } else { t },
                    held_core: None,
                })
                .collect();
            let stage_agg = vec![Default::default(); svc.stages.len()];
            let stage_samples = vec![Vec::new(); svc.stages.len()];
            if thread_count > 64 {
                return Err(SimError::InvalidScenario(format!(
                    "instance {}: {} worker threads exceed the engine's limit of \
                     64 threads per instance (the idle-thread bitmask is one u64); \
                     split the instance or reduce its threads/cores",
                    def.name, thread_count
                )));
            }
            instances.push(InstanceRt {
                name: def.name.clone(),
                service: def.service,
                machine: def.machine,
                cores,
                exec,
                idle_mask: if thread_count == 64 {
                    u64::MAX
                } else {
                    (1u64 << thread_count) - 1
                },
                threads,
                queue_sets,
                shared_queues: shared,
                rr_thread: 0,
                batches_dispatched: 0,
                jobs_processed: 0,
                stage_agg,
                profiling: false,
                stage_samples,
            });
        }

        // --- connections: pools ---------------------------------------
        let mut conns: Vec<Connection> = Vec::new();
        let mut pools: Vec<ConnectionPool> = Vec::new();
        let mut pool_lookup = crate::fasthash::FastMap::default();
        for (pi, def) in self.pools.iter().enumerate() {
            let pid = PoolId::from_raw(pi as u32);
            let up_threads = instances[def.up.index()].threads.len();
            let down_threads = instances[def.down.index()].threads.len();
            let member_ids: Vec<ConnectionId> = (0..def.size)
                .map(|k| {
                    let id = ConnectionId::from_raw(conns.len() as u32);
                    let mut c = Connection::new(
                        UpEndpoint::Instance {
                            instance: def.up,
                            thread: ThreadId::from_raw((k % up_threads) as u32),
                        },
                        def.down,
                        ThreadId::from_raw((k % down_threads) as u32),
                    );
                    c.pool = Some(pid);
                    conns.push(c);
                    id
                })
                .collect();
            pools.push(ConnectionPool::new(def.up, def.down, member_ids, &conns));
            pool_lookup.insert((def.up.raw(), def.down.raw()), pid);
        }

        // --- connections: clients --------------------------------------
        let factory = RngFactory::new(self.cfg.seed);
        let mut clients: Vec<ClientRt> = Vec::new();
        for (ci, def) in self.clients.iter().enumerate() {
            let mut ids = Vec::with_capacity(def.spec.connections);
            for k in 0..def.spec.connections {
                let root = def.roots[k % def.roots.len()];
                let down_threads = instances[root.index()].threads.len();
                let id = ConnectionId::from_raw(conns.len() as u32);
                conns.push(Connection::new(
                    UpEndpoint::Client(ClientId::from_raw(ci as u32)),
                    root,
                    ThreadId::from_raw((k % down_threads) as u32),
                ));
                ids.push(id);
            }
            // Stateful (bursty) processes get their own "burst" rng
            // sub-stream; typed traces resolve request-type names here,
            // where the graph is known.
            let mut arrival = def.spec.arrivals.runtime(&factory, ci as u64);
            if let crate::client::ArrivalProcess::Trace { types, .. } = &def.spec.arrivals {
                arrival.trace_types = types
                    .iter()
                    .map(|n| {
                        self.request_types
                            .iter()
                            .position(|t| t.name == *n)
                            .map(|i| RequestTypeId::from_raw(i as u32))
                            .ok_or_else(|| SimError::UnknownEntity {
                                kind: "request type",
                                name: format!("{n} (trace of client {})", def.spec.name),
                            })
                    })
                    .collect::<SimResult<Vec<_>>>()?;
            }
            clients.push(ClientRt {
                spec: def.spec.clone(),
                conns: ids,
                next_conn: 0,
                issued: 0,
                arrival,
            });
        }

        // --- request type metadata -------------------------------------
        let unblocks_thread: Vec<Vec<bool>> = self
            .request_types
            .iter()
            .map(|ty| {
                let mut v = vec![false; ty.nodes.len()];
                for node in &ty.nodes {
                    if let Some(u) = node.block_thread_until {
                        v[u.index()] = true;
                    }
                }
                v
            })
            .collect();
        let rr_instance: Vec<Vec<usize>> = self
            .request_types
            .iter()
            .map(|ty| vec![0; ty.nodes.len()])
            .collect();

        // --- rng streams & metrics -------------------------------------
        let warmup_at = SimTime::ZERO + self.cfg.warmup;
        let n_instances = instances.len();
        let mut sim = Simulator {
            cfg: self.cfg.clone(),
            now: SimTime::ZERO,
            events: crate::event::EventQueue::new(),
            rng_service: factory.stream("service", 0),
            rng_arrival: factory.stream("arrival", 0),
            rng_path: factory.stream("path", 0),
            rng_network: factory.stream("network", 0),
            machines,
            services: self.services.clone(),
            instances,
            conns,
            pools,
            pool_lookup,
            eph_free: crate::fasthash::FastMap::default(),
            request_types: self.request_types.clone(),
            unblocks_thread,
            rr_instance,
            clients,
            requests: RequestArena::new(),
            jobs: JobArena::new(),
            batch_pool: Vec::new(),
            controllers: Vec::new(),
            e2e: LatencyRecorder::new(warmup_at),
            per_type: vec![LatencyRecorder::new(warmup_at); self.request_types.len()],
            windowed: self.cfg.window.map(WindowedRecorder::new),
            interval_e2e: Vec::new(),
            interval_instance: vec![Vec::new(); n_instances],
            instance_residency: vec![LatencyRecorder::new(warmup_at); n_instances],
            generated: 0,
            completed: 0,
            timeouts: 0,
            completed_after_timeout: 0,
            events_processed: 0,
            stopped: false,
            tracing: None,
            traces: Vec::new(),
            span_log: None,
            telemetry: None,
            util_checkpoints: Vec::new(),
            fault: None,
            dropped: 0,
            shed: 0,
            retried: 0,
            degraded: 0,
            degraded_measured: 0,
            resolved_pending: 0,
            e2e_timeout: LatencyRecorder::new(warmup_at),
        };
        // A one-shot utilization checkpoint at the warmup boundary, so
        // `*_utilization_since(warmup_at)` works whether or not the
        // periodic sampler is enabled. Scheduled unconditionally to keep
        // event counts identical across telemetry on/off runs.
        sim.events
            .schedule(warmup_at, EventKind::TelemetrySample { recurring: false });

        // Kick off the clients: one pending arrival per open-loop client,
        // one per user for closed-loop clients.
        for ci in 0..sim.clients.len() {
            let client = ClientId::from_raw(ci as u32);
            match sim.clients[ci].spec.closed_loop.clone() {
                None => {
                    let first = {
                        let ClientRt { spec, arrival, .. } = &mut sim.clients[ci];
                        spec.arrivals
                            .first_arrival_rt(arrival, &mut sim.rng_arrival)
                    };
                    if let Some(first) = first {
                        sim.events
                            .schedule(SimTime::ZERO + first, EventKind::ClientArrival { client });
                    }
                }
                Some(cl) => {
                    for _ in 0..cl.users {
                        let think = cl.think_time.sample(&mut sim.rng_arrival);
                        sim.events.schedule(
                            SimTime::ZERO + SimDuration::from_secs_f64(think),
                            EventKind::ClientArrival { client },
                        );
                    }
                }
            }
        }
        Ok(sim)
    }

    fn validate_request_types(&self) -> SimResult<()> {
        for ty in &self.request_types {
            for (ni, node) in ty.nodes.iter().enumerate() {
                if let NodeTarget::Service {
                    service, instance, ..
                } = &node.target
                {
                    if service.index() >= self.services.len() {
                        return Err(SimError::UnknownEntity {
                            kind: "service",
                            name: service.to_string(),
                        });
                    }
                    let check_inst = |i: InstanceId| -> SimResult<()> {
                        let def = self
                            .instances
                            .get(i.index())
                            .ok_or(SimError::UnknownEntity {
                                kind: "instance",
                                name: i.to_string(),
                            })?;
                        if def.service != *service {
                            return Err(SimError::InvalidScenario(format!(
                                "request type {}: node {} targets service {} but instance {} runs {}",
                                ty.name, node.name, service, i, def.service
                            )));
                        }
                        Ok(())
                    };
                    match instance {
                        InstanceSelect::Fixed { instance } => check_inst(*instance)?,
                        InstanceSelect::RoundRobin { instances } => {
                            if instances.is_empty() {
                                return Err(SimError::InvalidScenario(format!(
                                    "request type {}: node {} has empty round-robin set",
                                    ty.name, node.name
                                )));
                            }
                            for &i in instances {
                                check_inst(i)?;
                            }
                        }
                        InstanceSelect::SameAsNode { node: n } => {
                            if n.index() >= ty.nodes.len() {
                                return Err(SimError::InvalidScenario(format!(
                                    "request type {}: node {} references missing node",
                                    ty.name, node.name
                                )));
                            }
                        }
                    }
                    if let NodeTarget::Service {
                        exec_path: crate::path::PathSelect::Fixed { index },
                        ..
                    } = &node.target
                    {
                        if *index >= self.services[service.index()].paths.len() {
                            return Err(SimError::InvalidScenario(format!(
                                "request type {}: node {} exec path {} out of range",
                                ty.name, node.name, index
                            )));
                        }
                    }
                }
                for n in [node.block_thread_until, node.pin_thread_of]
                    .into_iter()
                    .flatten()
                {
                    if n.index() >= ty.nodes.len() {
                        return Err(SimError::InvalidScenario(format!(
                            "request type {}: node {ni} references missing node {n}",
                            ty.name
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::ids::{PathNodeId, StageId};
    use crate::machine::{DvfsSpec, NetworkSpec};
    use crate::path::PathNodeSpec;
    use crate::service::ExecPath;
    use crate::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};

    fn simple_machine(cores: usize) -> MachineSpec {
        MachineSpec {
            name: "m".into(),
            cores,
            dvfs: DvfsSpec::fixed(2.6),
            network: NetworkSpec::passthrough(0.0),
            power: Default::default(),
        }
    }

    fn single_stage_service(mean_s: f64) -> ServiceModel {
        ServiceModel::new(
            "svc",
            vec![StageSpec::new(
                "proc",
                QueueDiscipline::Single,
                ServiceTimeModel::per_job(Distribution::exponential(mean_s), 2.6),
            )],
            vec![ExecPath::new("only", vec![StageId::from_raw(0)])],
        )
    }

    /// One machine, one single-stage instance, one client.
    fn echo_scenario(qps: f64, svc_mean: f64, seed: u64) -> Simulator {
        let mut b = ScenarioBuilder::new(seed);
        b.warmup(SimDuration::from_millis(500));
        let m = b.add_machine(simple_machine(4));
        let svc = b.add_service(single_stage_service(svc_mean));
        let inst = b.add_instance("svc0", svc, m, 1, ExecSpec::Simple).unwrap();
        let mut node = PathNodeSpec::request("svc", svc, inst);
        node.children = vec![PathNodeId::from_raw(1)];
        let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
        let ty = b
            .add_request_type(RequestType::new(
                "echo",
                vec![node, sink],
                PathNodeId::from_raw(0),
            ))
            .unwrap();
        b.add_client(ClientSpec::open_loop("c", qps, 10_000, ty), vec![inst]);
        b.build().unwrap()
    }

    #[test]
    fn echo_requests_complete() {
        let mut sim = echo_scenario(1_000.0, 100e-6, 7);
        sim.run_for(SimDuration::from_secs(3));
        assert!(sim.completed() > 2_000, "completed {}", sim.completed());
        let s = sim.latency_summary();
        assert!(s.count > 0);
        assert!(s.mean > 0.0);
        // Open-loop throughput matches the offered load (±5%).
        let tput = sim.completed() as f64 / sim.now().as_secs_f64();
        assert!((tput - 1000.0).abs() / 1000.0 < 0.05, "throughput {tput}");
    }

    #[test]
    fn mm1_mean_latency_matches_theory() {
        // M/M/1: W = 1/(mu - lambda). lambda = 5k, mu = 10k => W = 200us.
        let mut sim = echo_scenario(5_000.0, 100e-6, 11);
        sim.run_for(SimDuration::from_secs(20));
        let s = sim.latency_summary();
        let expect = 1.0 / (10_000.0 - 5_000.0);
        assert!(
            (s.mean - expect).abs() / expect < 0.08,
            "mean {} vs theory {expect}",
            s.mean
        );
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let run = |seed| {
            let mut sim = echo_scenario(2_000.0, 100e-6, seed);
            sim.run_for(SimDuration::from_secs(2));
            (sim.completed(), format!("{:?}", sim.latency_summary()))
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).1, run(6).1, "different seeds should differ");
    }

    #[test]
    fn no_leaks_after_run() {
        let mut sim = echo_scenario(3_000.0, 100e-6, 13);
        sim.run_for(SimDuration::from_secs(2));
        // In-flight requests are bounded by the connection count.
        assert!(sim.live_requests() <= 10_000);
        assert!(sim.generated() >= sim.completed());
        let inflight = sim.generated() - sim.completed();
        assert_eq!(inflight as usize, sim.live_requests());
    }

    #[test]
    fn utilization_matches_rho() {
        let mut sim = echo_scenario(5_000.0, 100e-6, 17);
        sim.run_for(SimDuration::from_secs(10));
        let u = sim.instance_utilization(InstanceId::from_raw(0));
        assert!((u - 0.5).abs() < 0.05, "utilization {u}");
    }

    #[test]
    fn build_rejects_core_oversubscription() {
        let mut b = ScenarioBuilder::new(1);
        let m = b.add_machine(simple_machine(2));
        let svc = b.add_service(single_stage_service(1e-4));
        b.add_instance("a", svc, m, 2, ExecSpec::Simple).unwrap();
        b.add_instance("b", svc, m, 1, ExecSpec::Simple).unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn build_rejects_wrong_service_instance() {
        let mut b = ScenarioBuilder::new(1);
        let m = b.add_machine(simple_machine(4));
        let svc_a = b.add_service(single_stage_service(1e-4));
        let svc_b = b.add_service(single_stage_service(1e-4));
        let inst_a = b.add_instance("a", svc_a, m, 1, ExecSpec::Simple).unwrap();
        // Node claims service B but targets an instance of service A.
        let mut node = PathNodeSpec::request("x", svc_b, inst_a);
        node.children = vec![PathNodeId::from_raw(1)];
        let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
        let ty = b
            .add_request_type(RequestType::new(
                "t",
                vec![node, sink],
                PathNodeId::from_raw(0),
            ))
            .unwrap();
        b.add_client(ClientSpec::open_loop("c", 100.0, 8, ty), vec![inst_a]);
        assert!(b.build().is_err());
    }

    #[test]
    fn build_rejects_empty_scenario() {
        let b = ScenarioBuilder::new(1);
        assert!(b.build().is_err());
    }

    #[test]
    fn instance_lookup_by_name() {
        let sim = echo_scenario(100.0, 1e-4, 3);
        assert_eq!(sim.instance_by_name("svc0"), Some(InstanceId::from_raw(0)));
        assert_eq!(sim.instance_by_name("nope"), None);
    }
}
