//! Critical-path extraction and tail-latency attribution.
//!
//! µqSim's telescoping latency decomposition (see [`crate::telemetry`])
//! charges every not-yet-attributed interval `[mark, now]` of a request's
//! life to exactly one component, advancing a shared per-request frontier.
//! Because concurrent fan-out branches share that frontier, whichever
//! branch's event fires next is the one that advances it — the sequence of
//! charges **is** the request's critical path through its span DAG, and the
//! segment durations telescope to the end-to-end latency with 0 ns error.
//!
//! This module aggregates those per-request critical paths into a
//! **critical-path contribution (CPC) profile**: for every *site* (client,
//! instance, stage, or connection pool) and *edge kind*
//! ([`EdgeKind`]: queue wait, service, network, blocking, fan-in sync,
//! client wait, retry backoff), how many nanoseconds of critical-path time
//! it contributed — overall, and split by end-to-end latency cohort (the
//! p50 band vs the p99+ band), so a differential "tail vs median" report
//! can rank which sites *shift* under load or faults.
//!
//! Two acquisition modes produce byte-identical profiles:
//!
//! * **Streaming** ([`TelemetryConfig::critpath`](crate::telemetry::TelemetryConfig)):
//!   each charge pushes a `(site, kind, ns)` segment onto the live request;
//!   measured completions fold their segments into dense per-latency-bucket
//!   accumulators. Bounded memory, non-perturbing (no extra events, no RNG
//!   draws — completions are bit-identical with the mode on or off).
//! * **Post-hoc** ([`CpcProfile::from_trace`]): replay a recorded span
//!   [`TraceLog`] through the same frontier state machine. Every charge the
//!   simulator made corresponds to exactly one logged event at the same
//!   timestamp in the same order, so the replay reproduces the streaming
//!   profile exactly — `uqsim why` cross-asserts the two.
//!
//! Profiles merge exactly (element-wise `u64` sums, commutative and
//! associative), so per-partition-cell profiles combine cell-order
//! deterministically into a byte-identical result at any `--shards` count
//! (invariant P7 of DESIGN.md §11).

use crate::ids::{ClientId, InstanceId, JobId, PoolId, RequestId};
use crate::telemetry::{bucket_index, LatencyComponent, MetricsRegistry, StreamingHistogram};
use crate::time::SimTime;
use crate::trace::{TraceEvent, TraceLog, TraceMeta};
use serde_json::{json, Value};
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Edge kinds and sites
// ---------------------------------------------------------------------

/// What kind of critical-path edge a segment is: the six telescoping
/// [`LatencyComponent`]s plus `RetryBackoff` (a retry request's client-side
/// launch delay, split out so retry storms are attributable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// Waiting for a free client connection before launch.
    ClientWait = 0,
    /// Wire flight, transmission, and receive-side interrupt processing.
    Network = 1,
    /// Sitting in a stage queue waiting for a worker thread and core.
    QueueWait = 2,
    /// Being serviced by a stage batch (includes context-switch overhead).
    Service = 3,
    /// Waiting for a pooled connection to a downstream service.
    Blocking = 4,
    /// Waiting at a fan-in node for the slowest sibling branch.
    FanInSync = 5,
    /// A retry's client-side launch delay (the `ClientWait` of a request
    /// re-emitted by a resilience policy; hedges stay `ClientWait`).
    RetryBackoff = 6,
}

impl EdgeKind {
    /// Number of edge kinds.
    pub const COUNT: usize = 7;

    /// All kinds in discriminant order.
    pub const ALL: [EdgeKind; Self::COUNT] = [
        EdgeKind::ClientWait,
        EdgeKind::Network,
        EdgeKind::QueueWait,
        EdgeKind::Service,
        EdgeKind::Blocking,
        EdgeKind::FanInSync,
        EdgeKind::RetryBackoff,
    ];

    /// Stable snake_case name (Prometheus/CSV/folded-stack label value).
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::ClientWait => "client_wait",
            EdgeKind::Network => "network",
            EdgeKind::QueueWait => "queue_wait",
            EdgeKind::Service => "service",
            EdgeKind::Blocking => "blocking",
            EdgeKind::FanInSync => "fan_in_sync",
            EdgeKind::RetryBackoff => "retry_backoff",
        }
    }

    /// The edge kind a plain latency-component charge maps to.
    pub fn from_component(c: LatencyComponent) -> Self {
        match c {
            LatencyComponent::ClientWait => EdgeKind::ClientWait,
            LatencyComponent::Network => EdgeKind::Network,
            LatencyComponent::QueueWait => EdgeKind::QueueWait,
            LatencyComponent::Service => EdgeKind::Service,
            LatencyComponent::Blocking => EdgeKind::Blocking,
            LatencyComponent::FanInSync => EdgeKind::FanInSync,
        }
    }
}

/// Where a critical-path segment was spent. Resolved to a display label
/// (globally unique across partition cells) when a profile is snapshotted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CritSite {
    /// Client-side (connection wait, final delivery leg).
    Client(ClientId),
    /// Arrival/fan-in at an instance (network and sync edges).
    Instance(InstanceId),
    /// One stage of one instance (queue-wait and service edges).
    Stage(InstanceId, u32),
    /// A connection pool (blocking edges).
    Pool(PoolId),
}

/// One critical-path segment buffered on a live request: `ns` nanoseconds
/// of `kind` time spent at `site`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CritSeg {
    /// Where the time was spent.
    pub site: CritSite,
    /// What kind of time it was.
    pub kind: EdgeKind,
    /// Segment duration, nanoseconds (always > 0; zero-length charges are
    /// never buffered).
    pub ns: u64,
}

/// Resolves a site to its display label. Labels are namespaced so the four
/// site classes never collide: clients are `client:<name>`, pools are
/// `pool:<up>-><down>`, stages are `<instance>/<stage>`, and instance
/// arrival sites are the bare instance name.
fn site_label(site: CritSite, meta: &TraceMeta) -> String {
    match site {
        CritSite::Client(c) => match meta.clients.get(c.index()) {
            Some(cl) => format!("client:{}", cl.name),
            None => format!("client:{}", c.raw()),
        },
        CritSite::Instance(i) => match meta.instances.get(i.index()) {
            Some(inst) => inst.name.clone(),
            None => format!("instance{}", i.raw()),
        },
        CritSite::Stage(i, s) => match meta.instances.get(i.index()) {
            Some(inst) => match inst.stages.get(s as usize) {
                Some(stage) => format!("{}/{stage}", inst.name),
                None => format!("{}/stage{s}", inst.name),
            },
            None => format!("instance{}/stage{s}", i.raw()),
        },
        CritSite::Pool(p) => match meta.pools.get(p.index()) {
            Some(pool) => format!("pool:{}->{}", pool.up, pool.down),
            None => format!("pool:{}", p.raw()),
        },
    }
}

// ---------------------------------------------------------------------
// Accumulation
// ---------------------------------------------------------------------

/// Per-(site, kind) accumulator: nanoseconds and segment counts, indexed by
/// the e2e-latency bucket of the owning request (log-linear
/// [`bucket_index`] buckets shared with [`StreamingHistogram`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct BucketVecs {
    ns: Vec<u64>,
    count: Vec<u64>,
}

impl BucketVecs {
    fn add(&mut self, bucket: usize, ns: u64) {
        if bucket >= self.ns.len() {
            self.ns.resize(bucket + 1, 0);
            self.count.resize(bucket + 1, 0);
        }
        self.ns[bucket] += ns;
        self.count[bucket] += 1;
    }
}

/// The streaming accumulator: an e2e histogram plus dense per-(site, kind)
/// bucket vectors. Bounded memory — proportional to
/// `sites × kinds × log(max latency)`, independent of request count.
#[derive(Debug, Clone, Default)]
pub(crate) struct CritAccum {
    e2e: StreamingHistogram,
    cells: HashMap<(CritSite, EdgeKind), BucketVecs>,
}

impl CritAccum {
    /// Folds one measured completion: the request's e2e latency picks the
    /// cohort bucket, and every buffered segment lands in it.
    pub(crate) fn fold(&mut self, e2e_ns: u64, segs: &[CritSeg]) {
        let bucket = bucket_index(e2e_ns);
        self.e2e.record(e2e_ns);
        for s in segs {
            self.cells
                .entry((s.site, s.kind))
                .or_default()
                .add(bucket, s.ns);
        }
    }

    /// Snapshots the accumulator into a mergeable, label-resolved
    /// [`CpcProfile`] (entries sorted by `(site label, kind)`).
    pub(crate) fn snapshot(&self, meta: &TraceMeta) -> CpcProfile {
        let mut entries: Vec<CpcEntry> = self
            .cells
            .iter()
            .map(|(&(site, kind), v)| CpcEntry {
                site: site_label(site, meta),
                kind,
                ns: v.ns.clone(),
                count: v.count.clone(),
            })
            .collect();
        entries.sort_by(|a, b| a.site.cmp(&b.site).then(a.kind.cmp(&b.kind)));
        CpcProfile {
            e2e: self.e2e.clone(),
            entries,
        }
    }
}

// ---------------------------------------------------------------------
// The profile
// ---------------------------------------------------------------------

/// One `(site, kind)` row of a [`CpcProfile`], holding per-e2e-bucket
/// nanosecond and segment-count vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpcEntry {
    /// Display label of the site (globally unique across partition cells).
    pub site: String,
    /// Edge kind.
    pub kind: EdgeKind,
    ns: Vec<u64>,
    count: Vec<u64>,
}

impl CpcEntry {
    /// Total critical-path nanoseconds this entry contributed.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    fn range_ns(&self, lo: usize, hi_inclusive: usize) -> u64 {
        let hi = (hi_inclusive + 1).min(self.ns.len());
        if lo >= hi {
            return 0;
        }
        self.ns[lo..hi].iter().sum()
    }
}

/// A critical-path contribution profile: the per-request critical paths of
/// every measured completion, aggregated per `(site, kind)` and per
/// e2e-latency bucket. See the [module docs](self) for semantics, and
/// [`CpcProfile::report`] for the cohort/differential analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CpcProfile {
    e2e: StreamingHistogram,
    entries: Vec<CpcEntry>,
}

impl CpcProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request's critical path directly: `e2e_ns` end-to-end
    /// latency and its telescoping `(site label, kind, ns)` segments.
    /// This is the public builder used by tests and external tooling; the
    /// simulator's streaming mode and [`CpcProfile::from_trace`] fold
    /// through the same per-bucket arithmetic.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the segment durations sum to `e2e_ns` (the 0 ns
    /// telescoping discipline).
    pub fn observe(&mut self, e2e_ns: u64, segs: &[(&str, EdgeKind, u64)]) {
        debug_assert_eq!(
            segs.iter().map(|s| s.2).sum::<u64>(),
            e2e_ns,
            "critical-path segments must telescope to the e2e latency"
        );
        let bucket = bucket_index(e2e_ns);
        self.e2e.record(e2e_ns);
        for &(site, kind, ns) in segs {
            let idx = match self
                .entries
                .binary_search_by(|e| e.site.as_str().cmp(site).then(e.kind.cmp(&kind)))
            {
                Ok(i) => i,
                Err(i) => {
                    self.entries.insert(
                        i,
                        CpcEntry {
                            site: site.to_string(),
                            kind,
                            ns: Vec::new(),
                            count: Vec::new(),
                        },
                    );
                    i
                }
            };
            let e = &mut self.entries[idx];
            if bucket >= e.ns.len() {
                e.ns.resize(bucket + 1, 0);
                e.count.resize(bucket + 1, 0);
            }
            e.ns[bucket] += ns;
            e.count[bucket] += 1;
        }
    }

    /// Merges another profile into this one (element-wise `u64` sums).
    /// Exactly commutative and associative, so per-cell profiles combine
    /// order-independently — the partition layer folds cells in cell order
    /// and gets byte-identical output at any shard count.
    pub fn merge(&mut self, other: &CpcProfile) {
        self.e2e.merge(&other.e2e);
        let mut merged: Vec<CpcEntry> =
            Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut a, mut b) = (
            self.entries.drain(..).peekable(),
            other.entries.iter().peekable(),
        );
        loop {
            let take_a = match (a.peek(), b.peek()) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(x), Some(y)) => match x.site.cmp(&y.site).then(x.kind.cmp(&y.kind)) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => {
                        let mut x = a.next().expect("peeked");
                        let y = b.next().expect("peeked");
                        if x.ns.len() < y.ns.len() {
                            x.ns.resize(y.ns.len(), 0);
                            x.count.resize(y.count.len(), 0);
                        }
                        for (dst, &src) in x.ns.iter_mut().zip(&y.ns) {
                            *dst += src;
                        }
                        for (dst, &src) in x.count.iter_mut().zip(&y.count) {
                            *dst += src;
                        }
                        merged.push(x);
                        continue;
                    }
                },
            };
            if take_a {
                merged.push(a.next().expect("peeked"));
            } else {
                merged.push(b.next().expect("peeked").clone());
            }
        }
        drop(a);
        self.entries = merged;
    }

    /// Number of measured requests folded in.
    pub fn requests(&self) -> u64 {
        self.e2e.count()
    }

    /// True if no request has been folded in.
    pub fn is_empty(&self) -> bool {
        self.e2e.is_empty()
    }

    /// The end-to-end latency histogram of the folded requests.
    pub fn e2e(&self) -> &StreamingHistogram {
        &self.e2e
    }

    /// The `(site, kind)` entries, sorted by `(site label, kind)`.
    pub fn entries(&self) -> &[CpcEntry] {
        &self.entries
    }

    /// Computes the cohort/differential report. Cohort boundaries derive
    /// from the profile's own e2e histogram: the **p50 band** is every
    /// latency bucket at or below the bucket holding the median, the
    /// **p99+ band** every bucket at or above the bucket holding the 99th
    /// percentile. Shares are a row's nanoseconds divided by the cohort's
    /// total critical-path nanoseconds; the differential is
    /// `p99 share − p50 share`.
    pub fn report(&self) -> CpcReport {
        let p50_ns = self.e2e.quantile_ns(0.50);
        let p99_ns = self.e2e.quantile_ns(0.99);
        let p50_hi = bucket_index(p50_ns);
        let p99_lo = bucket_index(p99_ns);
        let last = self.entries.iter().map(|e| e.ns.len()).max().unwrap_or(0);
        let last = last.saturating_sub(1);
        let overall_total: u64 = self.entries.iter().map(CpcEntry::total_ns).sum();
        let p50_total: u64 = self.entries.iter().map(|e| e.range_ns(0, p50_hi)).sum();
        let p99_total: u64 = self.entries.iter().map(|e| e.range_ns(p99_lo, last)).sum();
        let share = |ns: u64, total: u64| {
            if total == 0 {
                0.0
            } else {
                ns as f64 / total as f64
            }
        };
        let rows = self
            .entries
            .iter()
            .map(|e| {
                let overall = e.total_ns();
                let p50 = e.range_ns(0, p50_hi);
                let p99 = e.range_ns(p99_lo, last);
                CpcRow {
                    site: e.site.clone(),
                    kind: e.kind,
                    overall_ns: overall,
                    overall_share: share(overall, overall_total),
                    p50_ns: p50,
                    p50_share: share(p50, p50_total),
                    p99_ns: p99,
                    p99_share: share(p99, p99_total),
                    diff_share: share(p99, p99_total) - share(p50, p50_total),
                }
            })
            .collect();
        let counts = self.e2e.bucket_counts();
        let band = |lo: usize, hi_inclusive: usize| -> u64 {
            let hi = (hi_inclusive + 1).min(counts.len());
            if lo >= hi {
                0
            } else {
                counts[lo..hi].iter().sum()
            }
        };
        CpcReport {
            requests: self.e2e.count(),
            p50_ns,
            p99_ns,
            max_ns: self.e2e.max_ns(),
            p50_band_requests: band(0, p50_hi),
            p99_band_requests: band(p99_lo, counts.len().saturating_sub(1)),
            rows,
        }
    }

    /// Folded-stack flame-graph lines (`site;kind ns`), one per entry in
    /// `(site, kind)` order — directly consumable by inferno / flamegraph.pl
    /// / speedscope.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!("{};{} {}\n", e.site, e.kind.name(), e.total_ns()));
        }
        out
    }

    /// The `uqsim_critpath_*` Prometheus families, built standalone (they
    /// are intentionally not part of the per-run metrics registry, so
    /// existing exports stay byte-identical when the mode is off).
    pub fn registry(&self) -> MetricsRegistry {
        let report = self.report();
        let mut reg = MetricsRegistry::new();
        reg.counter(
            "uqsim_critpath_requests",
            "Measured requests folded into the critical-path profile",
            vec![],
            report.requests,
        );
        reg.summary(
            "uqsim_critpath_e2e_seconds",
            "End-to-end latency of the folded requests",
            vec![],
            &self.e2e,
        );
        for r in &report.rows {
            reg.gauge(
                "uqsim_critpath_seconds_total",
                "Critical-path time contributed per site and edge kind",
                vec![
                    ("site", r.site.clone()),
                    ("kind", r.kind.name().to_string()),
                ],
                r.overall_ns as f64 / 1e9,
            );
        }
        for r in &report.rows {
            for (cohort, share) in [
                ("overall", r.overall_share),
                ("p50", r.p50_share),
                ("p99", r.p99_share),
            ] {
                reg.gauge(
                    "uqsim_critpath_share",
                    "Share of cohort critical-path time per site and edge kind",
                    vec![
                        ("site", r.site.clone()),
                        ("kind", r.kind.name().to_string()),
                        ("cohort", cohort.to_string()),
                    ],
                    share,
                );
            }
        }
        reg
    }

    /// Reconstructs the profile post-hoc from a recorded span trace,
    /// replaying the simulator's telescoping-frontier state machine over
    /// the event stream (see the [module docs](self) for the event ↔ charge
    /// correspondence).
    ///
    /// # Errors
    ///
    /// Fails if the log was truncated (attribution from a partial stream
    /// would silently misattribute), or if any measured request's segments
    /// do not telescope exactly to its end-to-end latency (which would
    /// indicate a recorder or replay bug, never a property of the
    /// workload).
    pub fn from_trace(log: &TraceLog, meta: &TraceMeta) -> Result<CpcProfile, String> {
        if log.dropped() > 0 {
            return Err(format!(
                "span log truncated ({} events dropped): critical-path attribution \
                 requires the complete stream — raise the trace capacity (--events)",
                log.dropped()
            ));
        }
        struct ReqState {
            submitted: SimTime,
            mark: SimTime,
            client: ClientId,
            retry: bool,
            segs: Vec<CritSeg>,
        }
        struct JobState {
            request: RequestId,
            instance: InstanceId,
            stage: u32,
            in_service: bool,
        }
        let mut reqs: HashMap<RequestId, ReqState> = HashMap::new();
        let mut jobs: HashMap<JobId, JobState> = HashMap::new();
        let mut accum = CritAccum::default();
        // Advances `rid`'s frontier to `t`, charging the elapsed interval
        // to (site, kind). Zero-length intervals are skipped, mirroring the
        // streaming mode. Charges against already-completed requests
        // (quorum stragglers) or unknown ids are no-ops.
        fn charge(
            reqs: &mut HashMap<RequestId, ReqState>,
            rid: RequestId,
            t: SimTime,
            site: CritSite,
            kind: EdgeKind,
        ) {
            if let Some(r) = reqs.get_mut(&rid) {
                let dt = (t - r.mark).as_nanos();
                r.mark = t;
                if dt > 0 {
                    r.segs.push(CritSeg { site, kind, ns: dt });
                }
            }
        }
        for ev in log.events() {
            match *ev {
                TraceEvent::RequestEmitted {
                    request, client, t, ..
                } => {
                    reqs.insert(
                        request,
                        ReqState {
                            submitted: t,
                            mark: t,
                            client,
                            retry: false,
                            segs: Vec::new(),
                        },
                    );
                }
                TraceEvent::RequestRetry { request, .. } => {
                    if let Some(r) = reqs.get_mut(&request) {
                        r.retry = true;
                    }
                }
                TraceEvent::RequestLaunched { request, t, .. } => {
                    let (client, retry) = match reqs.get(&request) {
                        Some(r) => (r.client, r.retry),
                        None => continue,
                    };
                    let kind = if retry {
                        EdgeKind::RetryBackoff
                    } else {
                        EdgeKind::ClientWait
                    };
                    charge(&mut reqs, request, t, CritSite::Client(client), kind);
                }
                TraceEvent::FanIn {
                    request,
                    instance: Some(i),
                    fired,
                    t,
                    ..
                } => {
                    // Instance fan-ins are recorded only when fan_in > 1;
                    // the firing arrival's wait is synchronization, every
                    // other arrival's hop is network time. Sink fan-ins
                    // (instance = None) charge nothing, exactly like the
                    // simulator.
                    let kind = if fired {
                        EdgeKind::FanInSync
                    } else {
                        EdgeKind::Network
                    };
                    charge(&mut reqs, request, t, CritSite::Instance(i), kind);
                }
                TraceEvent::Enqueue {
                    job,
                    request,
                    instance,
                    stage,
                    t,
                    ..
                } => {
                    match jobs.get_mut(&job) {
                        Some(j) if j.in_service => {
                            // A stage-to-stage hand-off: the elapsed batch
                            // service belongs to the *previous* stage.
                            let site = CritSite::Stage(j.instance, j.stage);
                            j.instance = instance;
                            j.stage = stage.raw();
                            j.in_service = false;
                            charge(&mut reqs, request, t, site, EdgeKind::Service);
                        }
                        Some(j) => {
                            j.instance = instance;
                            j.stage = stage.raw();
                        }
                        None => {
                            // First enqueue = arrival at the instance: the
                            // hop since the frontier is network time (a
                            // same-timestamp fan-in charge already advanced
                            // it, making this a zero-length no-op there).
                            jobs.insert(
                                job,
                                JobState {
                                    request,
                                    instance,
                                    stage: stage.raw(),
                                    in_service: false,
                                },
                            );
                            charge(
                                &mut reqs,
                                request,
                                t,
                                CritSite::Instance(instance),
                                EdgeKind::Network,
                            );
                        }
                    }
                }
                TraceEvent::BatchStart {
                    instance,
                    stage,
                    start,
                    jobs: ref batch,
                    ..
                } => {
                    // Service begins: each batched job's wait since its
                    // frontier is queue time, charged in batch order (the
                    // exact order the simulator charges at dispatch).
                    for &job in batch {
                        let Some(j) = jobs.get_mut(&job) else {
                            continue;
                        };
                        j.in_service = true;
                        let rid = j.request;
                        charge(
                            &mut reqs,
                            rid,
                            start,
                            CritSite::Stage(instance, stage.raw()),
                            EdgeKind::QueueWait,
                        );
                    }
                }
                TraceEvent::NodeDone {
                    request,
                    job,
                    instance,
                    t,
                    ..
                } => {
                    if let Some(j) = jobs.remove(&job) {
                        if j.in_service {
                            charge(
                                &mut reqs,
                                request,
                                t,
                                CritSite::Stage(instance, j.stage),
                                EdgeKind::Service,
                            );
                        }
                    }
                }
                TraceEvent::PoolGrant {
                    pool, request, t, ..
                } => {
                    charge(
                        &mut reqs,
                        request,
                        t,
                        CritSite::Pool(pool),
                        EdgeKind::Blocking,
                    );
                }
                TraceEvent::RequestCompleted {
                    request,
                    measured,
                    t,
                    ..
                } => {
                    let client = match reqs.get(&request) {
                        Some(r) => r.client,
                        None => continue,
                    };
                    charge(
                        &mut reqs,
                        request,
                        t,
                        CritSite::Client(client),
                        EdgeKind::Network,
                    );
                    let r = reqs.remove(&request).expect("request state present");
                    if measured {
                        let e2e_ns = (t - r.submitted).as_nanos();
                        let sum: u64 = r.segs.iter().map(|s| s.ns).sum();
                        if sum != e2e_ns {
                            return Err(format!(
                                "critical path of request {request} does not telescope: \
                                 segments sum to {sum} ns, end-to-end is {e2e_ns} ns"
                            ));
                        }
                        accum.fold(e2e_ns, &r.segs);
                    }
                }
                TraceEvent::RequestDropped { request, .. }
                | TraceEvent::RequestShed { request, .. } => {
                    reqs.remove(&request);
                }
                TraceEvent::JobKilled { job, .. } => {
                    jobs.remove(&job);
                }
                _ => {}
            }
        }
        Ok(accum.snapshot(meta))
    }
}

// ---------------------------------------------------------------------
// Report and renderings
// ---------------------------------------------------------------------

/// One row of a [`CpcReport`]: a `(site, kind)` pair with its overall,
/// p50-band, and p99-band critical-path time and cohort shares.
#[derive(Debug, Clone, PartialEq)]
pub struct CpcRow {
    /// Site label.
    pub site: String,
    /// Edge kind.
    pub kind: EdgeKind,
    /// Critical-path nanoseconds over all measured requests.
    pub overall_ns: u64,
    /// Share of all critical-path time.
    pub overall_share: f64,
    /// Critical-path nanoseconds within the p50 band.
    pub p50_ns: u64,
    /// Share of the p50 band's critical-path time.
    pub p50_share: f64,
    /// Critical-path nanoseconds within the p99+ band.
    pub p99_ns: u64,
    /// Share of the p99+ band's critical-path time.
    pub p99_share: f64,
    /// `p99_share - p50_share`: positive means the site grows on the tail.
    pub diff_share: f64,
}

/// The cohort/differential analysis of a [`CpcProfile`]
/// (see [`CpcProfile::report`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CpcReport {
    /// Measured requests folded in.
    pub requests: u64,
    /// e2e p50, nanoseconds.
    pub p50_ns: u64,
    /// e2e p99, nanoseconds.
    pub p99_ns: u64,
    /// e2e maximum, nanoseconds.
    pub max_ns: u64,
    /// Requests in the p50 band (e2e bucket ≤ the median's bucket).
    pub p50_band_requests: u64,
    /// Requests in the p99+ band (e2e bucket ≥ the p99's bucket).
    pub p99_band_requests: u64,
    /// Rows in `(site, kind)` order.
    pub rows: Vec<CpcRow>,
}

impl CpcReport {
    /// The p99-band's top contributor (ties break toward the first row in
    /// `(site, kind)` order), or `None` on an empty profile.
    pub fn top_p99(&self) -> Option<&CpcRow> {
        self.rows
            .iter()
            .max_by(|a, b| {
                a.p99_share
                    .total_cmp(&b.p99_share)
                    .then(b.site.cmp(&a.site).then(b.kind.cmp(&a.kind)))
            })
            .filter(|r| r.p99_ns > 0)
    }

    /// Rows ranked by differential share, descending (biggest tail
    /// amplifier first; deterministic tie-break on `(site, kind)`).
    pub fn ranked_by_diff(&self) -> Vec<&CpcRow> {
        let mut rows: Vec<&CpcRow> = self.rows.iter().collect();
        rows.sort_by(|a, b| {
            b.diff_share
                .total_cmp(&a.diff_share)
                .then(a.site.cmp(&b.site).then(a.kind.cmp(&b.kind)))
        });
        rows
    }

    /// Rows ranked by one cohort's share, descending.
    fn ranked_by(&self, key: impl Fn(&CpcRow) -> f64) -> Vec<&CpcRow> {
        let mut rows: Vec<&CpcRow> = self.rows.iter().collect();
        rows.sort_by(|a, b| {
            key(b)
                .total_cmp(&key(a))
                .then(a.site.cmp(&b.site).then(a.kind.cmp(&b.kind)))
        });
        rows
    }

    /// Renders the human-readable attribution report (the body of
    /// `uqsim why`). Deterministic: fixed section order, share-ranked rows
    /// with `(site, kind)` tie-breaks, fixed-precision formatting.
    pub fn to_text(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let pct = |s: f64| s * 100.0;
        let mut out = String::new();
        out.push_str(&format!(
            "critical-path attribution — {} measured requests\n",
            self.requests
        ));
        if self.requests == 0 {
            out.push_str("(no measured completions; nothing to attribute)\n");
            return out;
        }
        out.push_str(&format!(
            "e2e: p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms\n",
            ms(self.p50_ns),
            ms(self.p99_ns),
            ms(self.max_ns)
        ));
        out.push_str(&format!(
            "cohorts: p50 band {} requests (e2e <= {:.3} ms), p99+ band {} requests (e2e >= {:.3} ms)\n",
            self.p50_band_requests,
            ms(self.p50_ns),
            self.p99_band_requests,
            ms(self.p99_ns)
        ));
        let section = |out: &mut String,
                       title: &str,
                       rows: Vec<&CpcRow>,
                       share: &dyn Fn(&CpcRow) -> f64,
                       ns: &dyn Fn(&CpcRow) -> u64| {
            out.push_str(&format!("\n{title}\n"));
            out.push_str(&format!(
                "  {:<38} {:<13} {:>12} {:>8}\n",
                "site", "kind", "ms", "share"
            ));
            for r in rows.into_iter().take(16) {
                if ns(r) == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "  {:<38} {:<13} {:>12.3} {:>7.2}%\n",
                    r.site,
                    r.kind.name(),
                    ms(ns(r)),
                    pct(share(r))
                ));
            }
        };
        section(
            &mut out,
            "overall",
            self.ranked_by(|r| r.overall_share),
            &|r| r.overall_share,
            &|r| r.overall_ns,
        );
        section(
            &mut out,
            "p50 cohort (where a median request spends its critical path)",
            self.ranked_by(|r| r.p50_share),
            &|r| r.p50_share,
            &|r| r.p50_ns,
        );
        section(
            &mut out,
            "p99+ cohort (where a tail request spends its critical path)",
            self.ranked_by(|r| r.p99_share),
            &|r| r.p99_share,
            &|r| r.p99_ns,
        );
        out.push_str("\ntail vs median (share shift, p99+ band minus p50 band)\n");
        for r in self.ranked_by_diff().into_iter().take(16) {
            if r.diff_share.abs() < 1e-4 {
                continue;
            }
            out.push_str(&format!(
                "  {:>+7.2}%  {} {} (p50 {:.2}% -> p99 {:.2}%)\n",
                pct(r.diff_share),
                r.site,
                r.kind.name(),
                pct(r.p50_share),
                pct(r.p99_share)
            ));
        }
        if let Some(top) = self.top_p99() {
            out.push_str(&format!(
                "\ntop p99 contributor: {} {} ({:.2}% of tail critical-path time)\n",
                top.site,
                top.kind.name(),
                pct(top.p99_share)
            ));
        }
        out
    }

    /// CSV rows in `(site, kind)` order. Columns:
    /// `site,kind,overall_ns,overall_share,p50_ns,p50_share,p99_ns,p99_share,diff_share`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "site,kind,overall_ns,overall_share,p50_ns,p50_share,p99_ns,p99_share,diff_share\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                r.site,
                r.kind.name(),
                r.overall_ns,
                r.overall_share,
                r.p50_ns,
                r.p50_share,
                r.p99_ns,
                r.p99_share,
                r.diff_share
            ));
        }
        out
    }

    /// JSON rendering (the `uqsim why --json` payload).
    pub fn to_json(&self) -> Value {
        let rows: Vec<Value> = self
            .rows
            .iter()
            .map(|r| {
                json!({
                    "site": r.site,
                    "kind": r.kind.name(),
                    "overall_ns": r.overall_ns,
                    "overall_share": r.overall_share,
                    "p50_ns": r.p50_ns,
                    "p50_share": r.p50_share,
                    "p99_ns": r.p99_ns,
                    "p99_share": r.p99_share,
                    "diff_share": r.diff_share,
                })
            })
            .collect();
        json!({
            "requests": self.requests,
            "e2e": {
                "p50_ns": self.p50_ns,
                "p99_ns": self.p99_ns,
                "max_ns": self.max_ns,
            },
            "cohorts": {
                "p50_band_requests": self.p50_band_requests,
                "p99_band_requests": self.p99_band_requests,
            },
            "top_p99": self.top_p99().map(|t| json!({
                "site": t.site, "kind": t.kind.name(), "share": t.p99_share,
            })).unwrap_or(Value::Null),
            "rows": rows,
        })
    }
}

// ---------------------------------------------------------------------
// Span-DAG model (the invariant the attribution rests on)
// ---------------------------------------------------------------------

/// A pure causal span DAG: spans are `[start, end]` nanosecond intervals,
/// edges assert happens-before (`a.end <= b.start`). The critical path is
/// the causally-ordered chain with the largest total span duration; since
/// chain spans are pairwise disjoint and contained in the DAG's envelope,
/// its length can never exceed the end-to-end time, with equality exactly
/// when a chain tiles the envelope gap-free — the property the telescoping
/// frontier decomposition realizes on every simulated request.
#[derive(Debug, Clone, Default)]
pub struct SpanDag {
    spans: Vec<(u64, u64)>,
    preds: Vec<Vec<usize>>,
}

impl SpanDag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a span `[start_ns, end_ns]`, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if `end_ns < start_ns`.
    pub fn add_span(&mut self, start_ns: u64, end_ns: u64) -> usize {
        assert!(end_ns >= start_ns, "span ends before it starts");
        self.spans.push((start_ns, end_ns));
        self.preds.push(Vec::new());
        self.spans.len() - 1
    }

    /// Adds a causal edge `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range, `from >= to` (edges must
    /// point forward so the insertion order is a topological order), or the
    /// spans overlap (`from` must end before `to` starts).
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(
            from < to && to < self.spans.len(),
            "edge must point forward"
        );
        assert!(
            self.spans[from].1 <= self.spans[to].0,
            "causal edge between overlapping spans"
        );
        self.preds[to].push(from);
    }

    /// End-to-end time: latest end minus earliest start (0 when empty).
    pub fn e2e_ns(&self) -> u64 {
        let start = self.spans.iter().map(|s| s.0).min().unwrap_or(0);
        let end = self.spans.iter().map(|s| s.1).max().unwrap_or(0);
        end - start
    }

    /// Length of the critical path: the maximum, over causally-ordered
    /// chains, of the sum of span durations. Always `<= e2e_ns()`.
    pub fn critical_path_ns(&self) -> u64 {
        let mut best = vec![0u64; self.spans.len()];
        let mut answer = 0;
        for i in 0..self.spans.len() {
            let dur = self.spans[i].1 - self.spans[i].0;
            let via = self.preds[i].iter().map(|&p| best[p]).max().unwrap_or(0);
            best[i] = dur + via;
            answer = answer.max(best[i]);
        }
        answer
    }

    /// Builds a gap-free serial chain from consecutive durations (each span
    /// starts exactly where the previous ended) — the equality case of the
    /// critical-path bound.
    pub fn serial_chain(durations: &[u64]) -> SpanDag {
        let mut dag = SpanDag::new();
        let mut t = 0u64;
        let mut prev: Option<usize> = None;
        for &d in durations {
            let i = dag.add_span(t, t + d);
            if let Some(p) = prev {
                dag.add_edge(p, i);
            }
            prev = Some(i);
            t += d;
        }
        dag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_kind_names_are_stable() {
        let names: Vec<&str> = EdgeKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "client_wait",
                "network",
                "queue_wait",
                "service",
                "blocking",
                "fan_in_sync",
                "retry_backoff"
            ]
        );
        for c in LatencyComponent::ALL {
            assert_eq!(EdgeKind::from_component(c).name(), c.name());
        }
    }

    #[test]
    fn observe_and_report() {
        let mut p = CpcProfile::new();
        // 9 fast requests dominated by service, one slow one dominated by
        // queue wait: the differential must point at the queue.
        for _ in 0..9 {
            p.observe(
                1_000,
                &[
                    ("api/handler", EdgeKind::Service, 800),
                    ("client:wrk", EdgeKind::Network, 200),
                ],
            );
        }
        p.observe(
            100_000,
            &[
                ("api/handler", EdgeKind::QueueWait, 95_000),
                ("api/handler", EdgeKind::Service, 4_000),
                ("client:wrk", EdgeKind::Network, 1_000),
            ],
        );
        assert_eq!(p.requests(), 10);
        let report = p.report();
        assert_eq!(report.requests, 10);
        let top = report.top_p99().expect("non-empty");
        assert_eq!(top.site, "api/handler");
        assert_eq!(top.kind, EdgeKind::QueueWait);
        let diff = report.ranked_by_diff();
        assert_eq!(diff[0].kind, EdgeKind::QueueWait);
        assert!(diff[0].diff_share > 0.5);
        // Shares within each cohort sum to 1.
        let overall: f64 = report.rows.iter().map(|r| r.overall_share).sum();
        assert!((overall - 1.0).abs() < 1e-12, "{overall}");
        let text = report.to_text();
        assert!(text.contains("top p99 contributor: api/handler queue_wait"));
        assert!(report.to_csv().starts_with("site,kind,overall_ns"));
        assert_eq!(report.to_json()["requests"], 10u64);
        assert!(p.to_folded().contains("api/handler;queue_wait 95000\n"));
    }

    #[test]
    fn merge_is_commutative_and_exact() {
        let seg_a: &[(&str, EdgeKind, u64)] = &[
            ("a/s0", EdgeKind::Service, 700),
            ("client:c", EdgeKind::Network, 300),
        ];
        let seg_b: &[(&str, EdgeKind, u64)] = &[
            ("b/s0", EdgeKind::QueueWait, 40_000),
            ("client:c", EdgeKind::Network, 2_000),
        ];
        let mut x = CpcProfile::new();
        x.observe(1_000, seg_a);
        let mut y = CpcProfile::new();
        y.observe(42_000, seg_b);

        let mut xy = x.clone();
        xy.merge(&y);
        let mut yx = y.clone();
        yx.merge(&x);
        assert_eq!(xy, yx);

        let mut both = CpcProfile::new();
        both.observe(1_000, seg_a);
        both.observe(42_000, seg_b);
        assert_eq!(xy, both);
    }

    #[test]
    fn empty_profile_renders() {
        let p = CpcProfile::new();
        let report = p.report();
        assert_eq!(report.requests, 0);
        assert!(report.top_p99().is_none());
        assert!(report.to_text().contains("no measured completions"));
        assert!(p
            .registry()
            .to_prometheus()
            .contains("uqsim_critpath_requests 0"));
    }

    #[test]
    fn span_dag_bound_and_equality() {
        // Serial chain: equality.
        let chain = SpanDag::serial_chain(&[10, 20, 30]);
        assert_eq!(chain.e2e_ns(), 60);
        assert_eq!(chain.critical_path_ns(), 60);

        // Fan-out/fan-in: the long branch is the critical path, strictly
        // below the envelope when gaps (network) separate the spans.
        let mut dag = SpanDag::new();
        let root = dag.add_span(0, 10);
        let fast = dag.add_span(15, 20);
        let slow = dag.add_span(15, 90);
        let join = dag.add_span(95, 100);
        dag.add_edge(root, fast);
        dag.add_edge(root, slow);
        dag.add_edge(fast, join);
        dag.add_edge(slow, join);
        assert_eq!(dag.e2e_ns(), 100);
        assert_eq!(dag.critical_path_ns(), 10 + 75 + 5);
        assert!(dag.critical_path_ns() <= dag.e2e_ns());
    }
}
