//! The discrete-event core: event kinds, deterministic ordering, and the
//! pending-event queue.
//!
//! Every state change in the simulator is driven by popping the earliest
//! event from a priority queue (Fig. 2 of the paper). Ties in time are broken
//! by a monotonically increasing sequence number, which makes runs with the
//! same seed bit-for-bit reproducible.
//!
//! # The ladder queue
//!
//! [`EventQueue`] is a calendar/ladder queue (Tang et al.) rather than a
//! binary heap: queueing simulations schedule near-monotonic timestamps, so
//! almost every operation is an O(1) bucket push or a `Vec::pop`, versus the
//! O(log n) sift (and its cache misses) a heap pays per event. The structure
//! has three tiers, earliest first:
//!
//! 1. **bottom** — a small `Vec` sorted *descending* by `(time, seq)`;
//!    `pop()` is `Vec::pop` from the back. New events that land inside
//!    bottom's time window are insertion-sorted (binary search + short
//!    memmove — bottom stays small by construction).
//! 2. **rungs** — a stack of bucket arrays. Each rung splits a time span
//!    into `RUNG_BUCKETS` fixed-width buckets; scheduling into a rung is
//!    an O(1) push into `bucket[(t - start) / width]`. When bottom drains,
//!    the next non-empty bucket of the finest rung is sorted and becomes
//!    the new bottom. A bucket holding more than `REFINE_LIMIT` events is
//!    not sorted wholesale: it is re-split into a finer rung (width divided
//!    by the bucket count), which keeps bottom — and therefore the cost of
//!    insertion-sorting into it — bounded regardless of how many events
//!    share a window.
//! 3. **top** — an unsorted overflow `Vec` for events beyond every rung
//!    (far-future faults, timeouts, the `Stop` sentinel). When the rest of
//!    the structure drains, top is re-bucketed into a fresh rung whose
//!    width adapts to the observed `[min, max]` span.
//!
//! The total order is exactly `(time, seq)` — identical to the old
//! `BinaryHeap` ordering — so replacing the container cannot move goldens:
//! routing between tiers looks only at `time`, every tier orders equal
//! times by `seq`, and the tier boundaries (`bot_end`, rung frontiers) are
//! maintained so that every event in an earlier tier precedes every event
//! in a later one. Bucket storage is recycled through spare pools, so a
//! steady-state schedule/pop cycle performs no heap allocation.

use crate::ids::{
    ClientId, ControllerId, CoreId, InstanceId, JobId, MachineId, RequestId, RequestTypeId,
    ThreadId,
};
use crate::time::SimTime;
use std::cmp::Ordering;

/// Where a network packet is headed once processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketDest {
    /// Deliver the job to a microservice instance (enters its stage queues).
    Instance(InstanceId),
    /// Deliver a finished response back to the issuing client.
    Client(ClientId),
}

/// A unit of network traffic: one job moving between machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// The job being carried.
    pub job: JobId,
    /// Destination endpoint.
    pub dest: PacketDest,
    /// True for same-machine (loopback) traffic, which bypasses the
    /// interrupt-processing cores.
    pub local: bool,
}

/// Payload of [`EventKind::DvfsSet`], boxed to keep the hot event variants
/// cache-dense (frequency changes are rare control-plane events).
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsChange {
    /// Target machine.
    pub machine: MachineId,
    /// Target core; `None` applies to every core of the machine.
    pub core: Option<CoreId>,
    /// New frequency in GHz (snapped to the machine's allowed levels).
    pub freq_ghz: f64,
}

/// Payload of [`EventKind::RetryEmit`], boxed to keep the hot event
/// variants cache-dense (retries only fire under fault plans).
#[derive(Debug, Clone, PartialEq)]
pub struct RetrySpec {
    /// The retrying client.
    pub client: ClientId,
    /// Request type of the failed attempt.
    pub request_type: RequestTypeId,
    /// Retry generation of the new emission (1 = first retry).
    pub attempt: u32,
    /// Payload size carried over from the failed attempt.
    pub size_bytes: f64,
}

/// Payload of [`EventKind::NetRetransmit`], boxed to keep the hot event
/// variants cache-dense (retransmits only fire on faulted links).
#[derive(Debug, Clone, PartialEq)]
pub struct RetransmitSpec {
    /// The job to re-send.
    pub job: JobId,
    /// Sending instance (`None` for a client hop).
    pub from: Option<InstanceId>,
    /// Destination instance.
    pub dest: InstanceId,
}

/// All event kinds the simulator understands.
///
/// The hot variants (`NetDeliver*`, `StageDone`) are kept to a 12-byte
/// payload so [`ScheduledEvent`] stays compact; rare control-plane variants
/// box their payload. A compile-time test pins the size.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// An open-loop client emits its next request.
    ClientArrival {
        /// The client that fires.
        client: ClientId,
    },
    /// A packet finished its wire flight and arrives directly at the
    /// destination instance (loopback traffic, or a machine without
    /// interrupt-processing cores).
    NetDeliver {
        /// The job being carried.
        job: JobId,
        /// The instance it enters.
        instance: InstanceId,
    },
    /// A packet finished its wire flight and arrives at the destination
    /// machine's network-processing service (cross-machine traffic on a
    /// machine with interrupt-processing cores).
    NetEnqueue {
        /// The job being carried.
        job: JobId,
        /// The instance it is ultimately headed for.
        instance: InstanceId,
    },
    /// An interrupt-handling core on `machine` finished processing a packet.
    NetDone {
        /// Machine whose network service completed work.
        machine: MachineId,
        /// Index into the network service's in-service slots.
        slot: u32,
    },
    /// A worker thread finished the service time of its current stage batch.
    StageDone {
        /// Instance owning the thread.
        instance: InstanceId,
        /// The thread that finished.
        thread: ThreadId,
    },
    /// A completed response reaches the client (records end-to-end latency).
    DeliverToClient {
        /// The finished request.
        request: RequestId,
    },
    /// A client-side timeout deadline for a request.
    RequestTimeout {
        /// The possibly-still-running request.
        request: RequestId,
    },
    /// Set the DVFS frequency of one core or a whole machine.
    DvfsSet(Box<DvfsChange>),
    /// A registered controller (e.g. the power manager) takes a decision.
    ControllerTick {
        /// Which controller.
        controller: ControllerId,
    },
    /// A telemetry sampling point. The one-shot form (`recurring: false`)
    /// only records a utilization checkpoint (the builder schedules one at
    /// the warmup boundary); the recurring form is the periodic sampler
    /// tick that closes a latency window, snapshots the gauge series, and
    /// reschedules itself (see [`crate::telemetry`]).
    TelemetrySample {
        /// Whether this tick reschedules itself.
        recurring: bool,
    },
    /// A scheduled fault transition begins (instance crash, machine
    /// slowdown, network degradation, or pool leak). Only scheduled when a
    /// fault plan is installed (see [`crate::fault`]).
    FaultStart {
        /// Index into the installed fault plan's fault list.
        fault: u32,
    },
    /// A scheduled fault transition ends (restart / window close / restore).
    FaultEnd {
        /// Index into the installed fault plan's fault list.
        fault: u32,
    },
    /// A client retry attempt fires after its backoff delay (fault plans
    /// with a retry policy only). Re-emits a fresh request of the same type
    /// on the same client.
    RetryEmit(Box<RetrySpec>),
    /// A hedging deadline: if `request` is still unresolved, emit a
    /// duplicate attempt alongside it.
    HedgeFire {
        /// The possibly-still-running original.
        request: RequestId,
    },
    /// A dropped packet's bounded retransmission fires after backoff.
    NetRetransmit(Box<RetransmitSpec>),
    /// Stop the simulation when popped.
    Stop,
}

/// An event with its scheduled time and tie-breaking sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent {
    /// When the event fires.
    pub time: SimTime,
    /// Monotone insertion counter; breaks ties deterministically.
    pub seq: u64,
    /// What happens.
    pub kind: EventKind,
}

impl Eq for ScheduledEvent {}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap; the reference-queue tests
        // (and any heap-based consumer) want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Buckets per rung. A power of two keeps the index math cheap; 256 gives
/// each refinement step a 256x width reduction, so even a nanosecond-dense
/// cluster under a multi-second span is fully refined in a few steps.
const RUNG_BUCKETS: usize = 256;

/// A bucket moved into bottom with more events than this is re-split into
/// a finer rung instead of sorted, bounding the size of bottom and hence
/// the memmove cost of insertion-sorting into it.
const REFINE_LIMIT: usize = 64;

/// One rung of the ladder: a fixed span split into equal-width buckets.
/// Buckets `[cur..]` are still pending; earlier ones have been drained.
#[derive(Debug)]
struct Rung {
    /// Time (ns) of the start of bucket 0.
    start: u64,
    /// Bucket width in ns (>= 1).
    width: u64,
    /// Exclusive end of the rung's span (saturating).
    end: u64,
    /// Next bucket to drain.
    cur: usize,
    buckets: Vec<Vec<ScheduledEvent>>,
}

/// The pending-event priority queue (a ladder queue; see the module docs
/// for the structure and the ordering argument).
///
/// # Examples
///
/// ```
/// use uqsim_core::event::{EventKind, EventQueue};
/// use uqsim_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), EventKind::Stop);
/// q.schedule(SimTime::from_nanos(10), EventKind::Stop);
/// assert_eq!(q.pop().unwrap().time, SimTime::from_nanos(10));
/// ```
#[derive(Debug)]
pub struct EventQueue {
    /// Sorted descending by `(time, seq)`; `pop` takes from the back.
    bottom: Vec<ScheduledEvent>,
    /// Exclusive upper bound (ns) of bottom's time window: new events
    /// strictly below it are insertion-sorted into bottom.
    bot_end: u64,
    /// Coarsest rung first; `rungs.last()` is the finest (earliest) span.
    rungs: Vec<Rung>,
    /// Unsorted far-future overflow (beyond every rung).
    top: Vec<ScheduledEvent>,
    top_min: u64,
    top_max: u64,
    len: usize,
    /// Next sequence number; doubles as the total-scheduled counter.
    seq: u64,
    /// Recycled bucket storage, so steady state allocates nothing.
    spare_buckets: Vec<Vec<ScheduledEvent>>,
    /// Recycled rung bucket arrays.
    spare_rungs: Vec<Vec<Vec<ScheduledEvent>>>,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self {
            bottom: Vec::new(),
            bot_end: 0,
            rungs: Vec::new(),
            top: Vec::new(),
            top_min: u64::MAX,
            top_max: 0,
            len: 0,
            seq: 0,
            spare_buckets: Vec::new(),
            spare_rungs: Vec::new(),
        }
    }
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `time`. Events at equal times fire in the order
    /// they were scheduled.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let ev = ScheduledEvent { time, seq, kind };
        let t = time.as_nanos();
        if self.len == 1 {
            // Empty-queue fast path: the event can only go to bottom.
            // `bot_end` may only grow — the (event-empty) rungs above it
            // keep their frontiers, and routing below a frontier would
            // strand events in already-drained buckets.
            if t >= self.bot_end {
                self.bot_end = t.saturating_add(1);
            }
            self.bottom.push(ev);
            return;
        }
        if t < self.bot_end {
            // Descending order: equal-time events keep insertion order
            // because the new event (largest seq) goes in front of them.
            let pos = self.bottom.partition_point(|e| e.time > time);
            self.bottom.insert(pos, ev);
            return;
        }
        for r in self.rungs.iter_mut().rev() {
            if t < r.end {
                let idx = ((t - r.start) / r.width) as usize;
                debug_assert!(
                    idx >= r.cur && idx < RUNG_BUCKETS,
                    "bucket routing invariant"
                );
                r.buckets[idx].push(ev);
                return;
            }
        }
        self.top_min = self.top_min.min(t);
        self.top_max = self.top_max.max(t);
        self.top.push(ev);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        if self.bottom.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.refill();
        }
        let ev = self.bottom.pop()?;
        self.len -= 1;
        Some(ev)
    }

    /// Refills bottom from the finest rung (refining oversized buckets),
    /// anchoring a fresh rung from top when the ladder is empty. On return
    /// bottom is non-empty (callers check `len > 0` first).
    #[cold]
    fn refill(&mut self) {
        debug_assert!(self.bottom.is_empty());
        loop {
            let Some(r) = self.rungs.last_mut() else {
                // Ladder empty: re-bucket top into a rung sized to the
                // observed span. `top_min >= bot_end` because everything
                // routed to top was at/above every boundary below it.
                debug_assert!(!self.top.is_empty(), "refill called on drained queue");
                let start = self.top_min;
                let width = (self.top_max - self.top_min) / RUNG_BUCKETS as u64 + 1;
                let mut rung = self.new_rung(start, width);
                for ev in self.top.drain(..) {
                    let idx = ((ev.time.as_nanos() - start) / width) as usize;
                    rung.buckets[idx].push(ev);
                }
                self.top_min = u64::MAX;
                self.top_max = 0;
                self.bot_end = start;
                self.rungs.push(rung);
                continue;
            };
            while r.cur < RUNG_BUCKETS && r.buckets[r.cur].is_empty() {
                r.cur += 1;
            }
            if r.cur == RUNG_BUCKETS {
                let dead = self.rungs.pop().expect("rung exists");
                self.spare_rungs.push(dead.buckets);
                continue;
            }
            let bucket_start = r.start + r.cur as u64 * r.width;
            let spare = self.spare_buckets.pop().unwrap_or_default();
            let mut b = std::mem::replace(&mut r.buckets[r.cur], spare);
            r.cur += 1;
            let width = r.width;
            if b.len() > REFINE_LIMIT && width > 1 {
                // Too dense to sort into bottom: split this bucket into a
                // finer rung (its frontier equals `bot_end`, so routing
                // stays consistent).
                let fine = width.div_ceil(RUNG_BUCKETS as u64);
                let mut rung = self.new_rung(bucket_start, fine);
                for ev in b.drain(..) {
                    let idx = (((ev.time.as_nanos() - bucket_start) / fine) as usize)
                        .min(RUNG_BUCKETS - 1);
                    rung.buckets[idx].push(ev);
                }
                self.spare_buckets.push(b);
                self.rungs.push(rung);
                continue;
            }
            b.sort_unstable_by(|a, z| z.time.cmp(&a.time).then_with(|| z.seq.cmp(&a.seq)));
            self.spare_buckets
                .push(std::mem::replace(&mut self.bottom, b));
            self.bot_end = bucket_start.saturating_add(width);
            return;
        }
    }

    fn new_rung(&mut self, start: u64, width: u64) -> Rung {
        let buckets = self
            .spare_rungs
            .pop()
            .unwrap_or_else(|| (0..RUNG_BUCKETS).map(|_| Vec::new()).collect());
        debug_assert!(buckets.iter().all(Vec::is_empty));
        Rung {
            start,
            width,
            end: start.saturating_add(width.saturating_mul(RUNG_BUCKETS as u64)),
            cur: 0,
            buckets,
        }
    }

    /// Time of the earliest pending event. Scans the whole structure when
    /// bottom is empty — a cold diagnostic accessor, not a hot-path one.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.bottom.last() {
            return Some(e.time);
        }
        let mut best: Option<SimTime> = None;
        let events = self
            .rungs
            .iter()
            .flat_map(|r| r.buckets[r.cur..].iter().flatten())
            .chain(self.top.iter());
        for e in events {
            best = Some(match best {
                Some(b) if b <= e.time => b,
                _ => e.time,
            });
        }
        best
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events ever scheduled (a simulator throughput statistic).
    /// Identical to the next sequence number, since every scheduled event
    /// consumes exactly one.
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn stop_at(q: &mut EventQueue, ns: u64) {
        q.schedule(SimTime::from_nanos(ns), EventKind::Stop);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        stop_at(&mut q, 30);
        stop_at(&mut q, 10);
        stop_at(&mut q, 20);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_nanos())
            .collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(
            SimTime::from_nanos(5),
            EventKind::ClientArrival {
                client: ClientId::from_raw(0),
            },
        );
        q.schedule(
            SimTime::from_nanos(5),
            EventKind::ClientArrival {
                client: ClientId::from_raw(1),
            },
        );
        q.schedule(
            SimTime::from_nanos(5),
            EventKind::ClientArrival {
                client: ClientId::from_raw(2),
            },
        );
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::ClientArrival { client } => client.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        stop_at(&mut q, 42);
        stop_at(&mut q, 7);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.pop().unwrap().time.as_nanos(), 7);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_reaches_into_rungs_and_top() {
        let mut q = EventQueue::new();
        // Drain once so later schedules route into rungs/top rather than
        // the bottom fast path.
        stop_at(&mut q, 5);
        assert_eq!(q.pop().unwrap().time.as_nanos(), 5);
        stop_at(&mut q, 1_000_000);
        stop_at(&mut q, 2_000_000_000);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1_000_000)));
    }

    #[test]
    fn counts_scheduled_events() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            stop_at(&mut q, i);
        }
        q.pop();
        assert_eq!(q.scheduled_total(), 5);
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn hot_variants_stay_compact() {
        // The whole point of boxing the rare variants: a scheduled event is
        // two cache lines' worth of bottom entries, not three.
        assert!(
            std::mem::size_of::<EventKind>() <= 16,
            "EventKind grew to {} bytes",
            std::mem::size_of::<EventKind>()
        );
        assert!(
            std::mem::size_of::<ScheduledEvent>() <= 32,
            "ScheduledEvent grew to {} bytes",
            std::mem::size_of::<ScheduledEvent>()
        );
    }

    // Property: for any interleaving of schedule times, pops are sorted by
    // (time, seq).
    #[test]
    fn pops_sorted_property() {
        use rand::Rng;
        let mut rng = crate::rng::RngFactory::new(3).stream("evq", 0);
        let mut q = EventQueue::new();
        for _ in 0..1000 {
            stop_at(&mut q, rng.gen_range(0..100));
        }
        let mut prev = (SimTime::ZERO, 0u64);
        let mut n = 0;
        while let Some(e) = q.pop() {
            assert!((e.time, e.seq) >= prev, "out of order pop");
            prev = (e.time, e.seq);
            n += 1;
        }
        assert_eq!(n, 1000);
    }

    /// A min-ordered `BinaryHeap` of [`ScheduledEvent`] — the exact
    /// structure the ladder queue replaced — used as the ordering oracle.
    #[derive(Default)]
    struct ReferenceQueue {
        heap: BinaryHeap<ScheduledEvent>,
        seq: u64,
    }

    impl ReferenceQueue {
        fn schedule(&mut self, time: SimTime, kind: EventKind) {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(ScheduledEvent { time, seq, kind });
        }
    }

    // Differential property: the ladder queue and the reference heap see
    // identical schedule/pop interleavings — near-monotonic bursts,
    // equal-time ties, and far-future outliers (faults/timeouts/Stop) —
    // and must produce identical pop sequences.
    #[test]
    fn matches_reference_heap_on_random_interleavings() {
        use rand::Rng;
        for trial in 0..40u64 {
            let mut rng = crate::rng::RngFactory::new(trial).stream("evq-diff", 0);
            let mut ladder = EventQueue::new();
            let mut reference = ReferenceQueue::default();
            let mut now: u64 = 0;
            let mut next_client: u32 = 0;
            for _step in 0..2000 {
                let roll: f64 = rng.gen();
                if roll < 0.55 {
                    // Near-future event, coarse grid to force time ties.
                    let t = now + rng.gen_range(0u64..50) * 10;
                    let kind = EventKind::ClientArrival {
                        client: ClientId::from_raw(next_client),
                    };
                    next_client += 1;
                    ladder.schedule(SimTime::from_nanos(t), kind.clone());
                    reference.schedule(SimTime::from_nanos(t), kind);
                } else if roll < 0.65 {
                    // Far-future outlier (timeout / fault / Stop territory).
                    let t = now + rng.gen_range(1_000_000u64..2_000_000_000);
                    ladder.schedule(SimTime::from_nanos(t), EventKind::Stop);
                    reference.schedule(SimTime::from_nanos(t), EventKind::Stop);
                } else {
                    // Pop a burst, advancing "now" like the run loop does.
                    for _ in 0..rng.gen_range(1..8) {
                        let got = ladder.pop();
                        let want = reference.heap.pop();
                        assert_eq!(got, want, "trial {trial} diverged");
                        if let Some(e) = &got {
                            assert!(e.time.as_nanos() >= now, "time went backwards");
                            now = e.time.as_nanos();
                        }
                    }
                }
                assert_eq!(ladder.len(), reference.heap.len());
            }
            // Drain both completely.
            loop {
                let got = ladder.pop();
                let want = reference.heap.pop();
                assert_eq!(got, want, "trial {trial} diverged in drain");
                if got.is_none() {
                    break;
                }
            }
        }
    }

    // The refinement path: thousands of events packed under a span with a
    // single far outlier forces wide buckets that must re-split.
    #[test]
    fn refines_dense_buckets_under_wide_spans() {
        use rand::Rng;
        let mut rng = crate::rng::RngFactory::new(7).stream("evq-dense", 0);
        let mut ladder = EventQueue::new();
        let mut reference = ReferenceQueue::default();
        // Far outlier first, so the anchored rung spans ~2s.
        ladder.schedule(SimTime::from_nanos(2_000_000_000), EventKind::Stop);
        reference.schedule(SimTime::from_nanos(2_000_000_000), EventKind::Stop);
        for i in 0..5000u32 {
            let t = rng.gen_range(0..1_000_000);
            let kind = EventKind::ClientArrival {
                client: ClientId::from_raw(i),
            };
            ladder.schedule(SimTime::from_nanos(t), kind.clone());
            reference.schedule(SimTime::from_nanos(t), kind);
        }
        loop {
            let got = ladder.pop();
            let want = reference.heap.pop();
            assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }
}
