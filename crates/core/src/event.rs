//! The discrete-event core: event kinds, deterministic ordering, and the
//! pending-event queue.
//!
//! Every state change in the simulator is driven by popping the earliest
//! event from a priority queue (Fig. 2 of the paper). Ties in time are broken
//! by a monotonically increasing sequence number, which makes runs with the
//! same seed bit-for-bit reproducible.

use crate::ids::{
    ClientId, ControllerId, CoreId, InstanceId, JobId, MachineId, RequestId, RequestTypeId,
    ThreadId,
};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Where a network packet is headed once processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketDest {
    /// Deliver the job to a microservice instance (enters its stage queues).
    Instance(InstanceId),
    /// Deliver a finished response back to the issuing client.
    Client(ClientId),
}

/// A unit of network traffic: one job moving between machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// The job being carried.
    pub job: JobId,
    /// Destination endpoint.
    pub dest: PacketDest,
    /// True for same-machine (loopback) traffic, which bypasses the
    /// interrupt-processing cores.
    pub local: bool,
}

/// All event kinds the simulator understands.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// An open-loop client emits its next request.
    ClientArrival {
        /// The client that fires.
        client: ClientId,
    },
    /// A packet finished its wire flight and arrives at the destination
    /// machine's network-processing service (or directly at the instance if
    /// network processing is disabled on that machine).
    NetDelivery {
        /// The packet in flight.
        packet: Packet,
    },
    /// An interrupt-handling core on `machine` finished processing a packet.
    NetDone {
        /// Machine whose network service completed work.
        machine: MachineId,
        /// Index into the network service's in-service slots.
        slot: usize,
    },
    /// A worker thread finished the service time of its current stage batch.
    StageDone {
        /// Instance owning the thread.
        instance: InstanceId,
        /// The thread that finished.
        thread: ThreadId,
    },
    /// A completed response reaches the client (records end-to-end latency).
    DeliverToClient {
        /// The finished request.
        request: RequestId,
    },
    /// A client-side timeout deadline for a request.
    RequestTimeout {
        /// The possibly-still-running request.
        request: RequestId,
    },
    /// Set the DVFS frequency of one core or a whole machine.
    DvfsSet {
        /// Target machine.
        machine: MachineId,
        /// Target core; `None` applies to every core of the machine.
        core: Option<CoreId>,
        /// New frequency in GHz (snapped to the machine's allowed levels).
        freq_ghz: f64,
    },
    /// A registered controller (e.g. the power manager) takes a decision.
    ControllerTick {
        /// Which controller.
        controller: ControllerId,
    },
    /// A telemetry sampling point. The one-shot form (`recurring: false`)
    /// only records a utilization checkpoint (the builder schedules one at
    /// the warmup boundary); the recurring form is the periodic sampler
    /// tick that closes a latency window, snapshots the gauge series, and
    /// reschedules itself (see [`crate::telemetry`]).
    TelemetrySample {
        /// Whether this tick reschedules itself.
        recurring: bool,
    },
    /// A scheduled fault transition begins (instance crash, machine
    /// slowdown, network degradation, or pool leak). Only scheduled when a
    /// fault plan is installed (see [`crate::fault`]).
    FaultStart {
        /// Index into the installed fault plan's fault list.
        fault: usize,
    },
    /// A scheduled fault transition ends (restart / window close / restore).
    FaultEnd {
        /// Index into the installed fault plan's fault list.
        fault: usize,
    },
    /// A client retry attempt fires after its backoff delay (fault plans
    /// with a retry policy only). Re-emits a fresh request of the same type
    /// on the same client.
    RetryEmit {
        /// The retrying client.
        client: ClientId,
        /// Request type of the failed attempt.
        request_type: RequestTypeId,
        /// Retry generation of the new emission (1 = first retry).
        attempt: u32,
        /// Payload size carried over from the failed attempt.
        size_bytes: f64,
    },
    /// A hedging deadline: if `request` is still unresolved, emit a
    /// duplicate attempt alongside it.
    HedgeFire {
        /// The possibly-still-running original.
        request: RequestId,
    },
    /// A dropped packet's bounded retransmission fires after backoff.
    NetRetransmit {
        /// The job to re-send.
        job: JobId,
        /// Sending instance (`None` for a client hop).
        from: Option<InstanceId>,
        /// Destination instance.
        dest: InstanceId,
    },
    /// Stop the simulation when popped.
    Stop,
}

/// An event with its scheduled time and tie-breaking sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent {
    /// When the event fires.
    pub time: SimTime,
    /// Monotone insertion counter; breaks ties deterministically.
    pub seq: u64,
    /// What happens.
    pub kind: EventKind,
}

impl Eq for ScheduledEvent {}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The pending-event priority queue.
///
/// # Examples
///
/// ```
/// use uqsim_core::event::{EventKind, EventQueue};
/// use uqsim_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), EventKind::Stop);
/// q.schedule(SimTime::from_nanos(10), EventKind::Stop);
/// assert_eq!(q.pop().unwrap().time, SimTime::from_nanos(10));
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
    scheduled_total: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `time`. Events at equal times fire in the order
    /// they were scheduled.
    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(ScheduledEvent { time, seq, kind });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (a simulator throughput statistic).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stop_at(q: &mut EventQueue, ns: u64) {
        q.schedule(SimTime::from_nanos(ns), EventKind::Stop);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        stop_at(&mut q, 30);
        stop_at(&mut q, 10);
        stop_at(&mut q, 20);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_nanos())
            .collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(
            SimTime::from_nanos(5),
            EventKind::ClientArrival {
                client: ClientId::from_raw(0),
            },
        );
        q.schedule(
            SimTime::from_nanos(5),
            EventKind::ClientArrival {
                client: ClientId::from_raw(1),
            },
        );
        q.schedule(
            SimTime::from_nanos(5),
            EventKind::ClientArrival {
                client: ClientId::from_raw(2),
            },
        );
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::ClientArrival { client } => client.raw(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        stop_at(&mut q, 42);
        stop_at(&mut q, 7);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.pop().unwrap().time.as_nanos(), 7);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn counts_scheduled_events() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            stop_at(&mut q, i);
        }
        q.pop();
        assert_eq!(q.scheduled_total(), 5);
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    // Property: for any interleaving of schedule times, pops are sorted by
    // (time, seq).
    #[test]
    fn pops_sorted_property() {
        use rand::Rng;
        let mut rng = crate::rng::RngFactory::new(3).stream("evq", 0);
        let mut q = EventQueue::new();
        for _ in 0..1000 {
            stop_at(&mut q, rng.gen_range(0..100));
        }
        let mut prev = (SimTime::ZERO, 0u64);
        let mut n = 0;
        while let Some(e) = q.pop() {
            assert!((e.time, e.seq) >= prev, "out of order pop");
            prev = (e.time, e.seq);
            n += 1;
        }
        assert_eq!(n, 1000);
    }
}
