//! Typed identifiers for simulation entities.
//!
//! Every arena-stored entity (machines, cores, service instances, threads,
//! connections, requests, jobs, …) is addressed by a dedicated newtype index.
//! The newtypes prevent cross-arena mixups at compile time (C-NEWTYPE) while
//! compiling down to plain integers.

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            pub const fn from_raw(raw: u32) -> Self {
                $name(raw)
            }

            /// The raw index value.
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The raw index as a `usize`, for arena addressing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifies a physical machine in the cluster.
    MachineId
);
define_id!(
    /// Identifies a core *within* a machine (machine-local index).
    CoreId
);
define_id!(
    /// Identifies a microservice model (the reusable `service.json` template).
    ServiceId
);
define_id!(
    /// Identifies a deployed instance of a microservice.
    InstanceId
);
define_id!(
    /// Identifies an execution stage within a microservice model.
    StageId
);
define_id!(
    /// Identifies an intra-microservice execution path (sequence of stages).
    ExecPathId
);
define_id!(
    /// Identifies a worker thread *within* an instance (instance-local index).
    ThreadId
);
define_id!(
    /// Identifies a network connection endpoint pair.
    ConnectionId
);
define_id!(
    /// Identifies a connection pool between two tiers.
    PoolId
);
define_id!(
    /// Identifies a node in the inter-microservice path DAG (template-local).
    PathNodeId
);
define_id!(
    /// Identifies a request-type template (one inter-microservice path DAG).
    RequestTypeId
);
define_id!(
    /// Identifies a workload client.
    ClientId
);
define_id!(
    /// Identifies a registered control-plane controller (e.g. power manager).
    ControllerId
);

/// Identifies one end-user request in flight. 64-bit so ids never wrap in
/// long experiments; the low bits index a recycled slot and the high bits
/// hold a generation counter to catch stale references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId {
    pub(crate) slot: u32,
    pub(crate) generation: u32,
}

impl RequestId {
    /// Creates a request id from a slot and generation.
    pub const fn new(slot: u32, generation: u32) -> Self {
        RequestId { slot, generation }
    }

    /// Arena slot of this request.
    pub const fn slot(self) -> usize {
        self.slot as usize
    }

    /// Reuse generation of the slot at the time this id was minted.
    pub const fn generation(self) -> u32 {
        self.generation
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RequestId({}.{})", self.slot, self.generation)
    }
}

/// Identifies one job: a request's visit to one path node. Same slot +
/// generation scheme as [`RequestId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId {
    pub(crate) slot: u32,
    pub(crate) generation: u32,
}

impl JobId {
    /// Creates a job id from a slot and generation.
    pub const fn new(slot: u32, generation: u32) -> Self {
        JobId { slot, generation }
    }

    /// Arena slot of this job.
    pub const fn slot(self) -> usize {
        self.slot as usize
    }

    /// Reuse generation of the slot at the time this id was minted.
    pub const fn generation(self) -> u32 {
        self.generation
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JobId({}.{})", self.slot, self.generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_raw() {
        let m = MachineId::from_raw(3);
        assert_eq!(m.raw(), 3);
        assert_eq!(m.index(), 3);
        assert_eq!(usize::from(m), 3);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(InstanceId::from_raw(7).to_string(), "InstanceId(7)");
        assert_eq!(RequestId::new(1, 2).to_string(), "RequestId(1.2)");
        assert_eq!(JobId::new(4, 0).to_string(), "JobId(4.0)");
    }

    #[test]
    fn generation_distinguishes_recycled_slots() {
        let a = RequestId::new(5, 0);
        let b = RequestId::new(5, 1);
        assert_ne!(a, b);
        assert_eq!(a.slot(), b.slot());
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(CoreId::from_raw(0));
        set.insert(CoreId::from_raw(1));
        assert_eq!(set.len(), 2);
        assert!(CoreId::from_raw(0) < CoreId::from_raw(1));
    }

    #[test]
    fn serde_transparent() {
        let j = serde_json::to_string(&StageId::from_raw(9)).unwrap();
        assert_eq!(j, "9");
    }
}
