//! # uqsim-core
//!
//! A discrete-event queueing-network simulator for interactive
//! microservices — a from-scratch Rust reproduction of **µqSim** (Zhang,
//! Gan, Delimitrou; ISPASS 2019).
//!
//! µqSim models microservices at two levels:
//!
//! * **Intra-microservice**: each service is a pipeline of *stages*
//!   (queue–consumer pairs) with epoll/socket batching and
//!   batch-size/frequency-dependent service times ([`stage`], [`queue`],
//!   [`service`]).
//! * **Inter-microservice**: requests traverse a DAG of *path nodes* with
//!   fan-out, fan-in synchronization, HTTP/1.1 connection blocking,
//!   connection pools, and synchronous-RPC thread blocking ([`path`],
//!   [`connection`]).
//!
//! The platform model covers machines with dedicated cores, per-core DVFS,
//! and per-machine network (soft-irq) processing ([`machine`]). Periodic
//! controllers (e.g. a QoS-aware power manager) plug in via
//! [`controller::Controller`].
//!
//! ## Quick start
//!
//! ```
//! use uqsim_core::builder::{ExecSpec, ScenarioBuilder};
//! use uqsim_core::client::ClientSpec;
//! use uqsim_core::dist::Distribution;
//! use uqsim_core::ids::{PathNodeId, StageId};
//! use uqsim_core::machine::{DvfsSpec, MachineSpec, NetworkSpec};
//! use uqsim_core::path::{PathNodeSpec, RequestType};
//! use uqsim_core::service::{ExecPath, ServiceModel};
//! use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};
//! use uqsim_core::time::SimDuration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ScenarioBuilder::new(42);
//! let m = b.add_machine(MachineSpec {
//!     name: "server".into(),
//!     cores: 4,
//!     dvfs: DvfsSpec::fixed(2.6),
//!     network: NetworkSpec::passthrough(10e-6),
//!     power: Default::default(),
//! });
//! let svc = b.add_service(ServiceModel::new(
//!     "api",
//!     vec![StageSpec::new(
//!         "handler",
//!         QueueDiscipline::Single,
//!         ServiceTimeModel::per_job(Distribution::exponential(50e-6), 2.6),
//!     )],
//!     vec![ExecPath::new("default", vec![StageId::from_raw(0)])],
//! ));
//! let inst = b.add_instance("api0", svc, m, 2, ExecSpec::Simple)?;
//! let mut front = PathNodeSpec::request("api", svc, inst);
//! front.children = vec![PathNodeId::from_raw(1)];
//! let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
//! let ty = b.add_request_type(RequestType::new(
//!     "get",
//!     vec![front, sink],
//!     PathNodeId::from_raw(0),
//! ))?;
//! b.add_client(ClientSpec::open_loop("wrk", 10_000.0, 320, ty), vec![inst]);
//!
//! let mut sim = b.build()?;
//! sim.run_for(SimDuration::from_secs(5));
//! let stats = sim.latency_summary();
//! println!("p99 = {:.1}us over {} requests", stats.p99 * 1e6, stats.count);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod client;
pub mod config;
pub mod connection;
pub mod controller;
pub mod critpath;
pub mod dist;
pub mod error;
pub mod event;
pub mod fasthash;
pub mod fault;
pub mod histogram;
pub mod ids;
pub mod job;
pub mod machine;
pub mod metrics;
pub mod partition;
pub mod path;
pub mod queue;
pub mod rng;
pub mod run;
pub mod service;
pub mod sim;
pub mod stage;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use builder::{ExecSpec, ScenarioBuilder};
pub use critpath::{CpcProfile, CpcReport, EdgeKind, SpanDag};
pub use error::{SimError, SimResult};
pub use fault::{FaultPlan, FaultSpec, FaultSummary};
pub use partition::{run_partitioned, PartitionOptions, PartitionPlan, PartitionedRun};
pub use run::{run_one, RunResult};
pub use sim::Simulator;
pub use telemetry::{
    LatencyComponent, MetricsRegistry, MetricsSnapshot, StreamingHistogram, TelemetryConfig,
};
pub use time::{SimDuration, SimTime};
pub use trace::{AuditReport, TraceAuditor, TraceLog};
