//! Per-request span tracing and trace-driven invariant auditing.
//!
//! When enabled with [`Simulator::enable_span_tracing`](crate::Simulator::enable_span_tracing),
//! the simulator appends one [`TraceEvent`] to an in-memory [`TraceLog`] at
//! every interesting point of a request's life: client emission and launch,
//! network (soft-irq) processing, stage enqueue and batch service,
//! connection-pool acquire/block/grant/release, fan-in synchronization,
//! node completion, and end-to-end completion or timeout. Tracing is
//! strictly opt-in — when disabled (the default) every hot-path hook is a
//! single branch on a `None`, so the simulator's speed is unaffected.
//!
//! Two consumers are built on the log:
//!
//! * [`chrome_trace`] renders the log as Chrome `trace_event` JSON —
//!   machines become processes, cores become threads, batch services and
//!   irq processing become complete (`"ph": "X"`) spans, and requests
//!   become async (`"b"`/`"e"`) spans — viewable directly in
//!   `about:tracing` or [Perfetto](https://ui.perfetto.dev).
//! * [`TraceAuditor`] replays the log against the simulator's conservation
//!   laws (every emitted request is completed or still in flight), span
//!   causality (enqueue ≤ start ≤ end, spans inside the request's
//!   lifetime, fan-in fires only after all parents arrived), per-core and
//!   per-thread non-overlap (a core services at most one batch at a time),
//!   connection-pool discipline (no double acquire/release), and warmup
//!   accounting (measured completions match the latency recorder).
//!
//! # Example
//!
//! ```
//! # use uqsim_core::builder::{ExecSpec, ScenarioBuilder};
//! # use uqsim_core::client::ClientSpec;
//! # use uqsim_core::dist::Distribution;
//! # use uqsim_core::ids::{PathNodeId, StageId};
//! # use uqsim_core::machine::{DvfsSpec, MachineSpec, NetworkSpec};
//! # use uqsim_core::path::{PathNodeSpec, RequestType};
//! # use uqsim_core::service::{ExecPath, ServiceModel};
//! # use uqsim_core::stage::{QueueDiscipline, ServiceTimeModel, StageSpec};
//! # use uqsim_core::time::SimDuration;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut b = ScenarioBuilder::new(42);
//! # let m = b.add_machine(MachineSpec {
//! #     name: "server".into(),
//! #     cores: 2,
//! #     dvfs: DvfsSpec::fixed(2.6),
//! #     network: NetworkSpec::passthrough(10e-6),
//! #     power: Default::default(),
//! # });
//! # let svc = b.add_service(ServiceModel::new(
//! #     "api",
//! #     vec![StageSpec::new(
//! #         "handler",
//! #         QueueDiscipline::Single,
//! #         ServiceTimeModel::per_job(Distribution::exponential(50e-6), 2.6),
//! #     )],
//! #     vec![ExecPath::new("default", vec![StageId::from_raw(0)])],
//! # ));
//! # let inst = b.add_instance("api0", svc, m, 2, ExecSpec::Simple)?;
//! # let mut front = PathNodeSpec::request("api", svc, inst);
//! # front.children = vec![PathNodeId::from_raw(1)];
//! # let sink = PathNodeSpec::client_sink(PathNodeId::from_raw(0));
//! # let ty = b.add_request_type(RequestType::new(
//! #     "get",
//! #     vec![front, sink],
//! #     PathNodeId::from_raw(0),
//! # ))?;
//! # b.add_client(ClientSpec::open_loop("wrk", 1_000.0, 32, ty), vec![inst]);
//! let mut sim = b.build()?;
//! sim.enable_span_tracing(100_000);
//! sim.run_for(SimDuration::from_secs(2));
//!
//! // Invariant audit: zero violations on a healthy run.
//! let report = sim.audit_trace().expect("tracing is enabled");
//! assert!(report.is_clean(), "{:?}", report.violations);
//!
//! // Chrome trace_event JSON for about:tracing / Perfetto.
//! let chrome = sim.chrome_trace().expect("tracing is enabled");
//! assert!(chrome["traceEvents"].as_array().unwrap().len() > 10);
//! # Ok(())
//! # }
//! ```

use crate::ids::{
    ClientId, ConnectionId, InstanceId, JobId, MachineId, PathNodeId, PoolId, RequestId,
    RequestTypeId, StageId, ThreadId,
};
use crate::time::SimTime;
use serde_json::{json, Value};
use std::collections::HashMap;

/// One recorded event in a [`TraceLog`]. Events appear in execution order;
/// events with equal timestamps keep the order the simulator produced them.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A client generated a new request.
    RequestEmitted {
        /// The request.
        request: RequestId,
        /// Its request type.
        request_type: RequestTypeId,
        /// The issuing client.
        client: ClientId,
        /// Emission time.
        t: SimTime,
    },
    /// The request was written onto a free client connection (this can be
    /// later than emission when the connection was busy).
    RequestLaunched {
        /// The request.
        request: RequestId,
        /// The client connection carrying it.
        conn: ConnectionId,
        /// Launch time.
        t: SimTime,
    },
    /// An irq core processed one inbound packet (§III-A network model).
    NetRx {
        /// The receiving machine.
        machine: MachineId,
        /// Machine-local irq core index.
        core: u32,
        /// The job carried by the packet.
        job: JobId,
        /// Processing start.
        start: SimTime,
        /// Processing end.
        end: SimTime,
    },
    /// A job entered a stage queue.
    Enqueue {
        /// The job.
        job: JobId,
        /// Its owning request.
        request: RequestId,
        /// The path node the job is visiting.
        node: PathNodeId,
        /// The instance whose queue it entered.
        instance: InstanceId,
        /// The stage queue.
        stage: StageId,
        /// Enqueue time.
        t: SimTime,
    },
    /// A worker thread started servicing a batch through one stage.
    BatchStart {
        /// The instance.
        instance: InstanceId,
        /// The machine hosting it.
        machine: MachineId,
        /// The stage being serviced.
        stage: StageId,
        /// The worker thread.
        thread: ThreadId,
        /// Machine-local core index the batch runs on.
        core: u32,
        /// Core frequency during service, GHz.
        freq_ghz: f64,
        /// Service start (includes any context-switch penalty).
        start: SimTime,
        /// Service end.
        end: SimTime,
        /// The batched jobs, in batch order.
        jobs: Vec<JobId>,
    },
    /// A job acquired a pooled connection.
    PoolAcquire {
        /// The pool.
        pool: PoolId,
        /// The acquired connection.
        conn: ConnectionId,
        /// The acquiring job.
        job: JobId,
        /// Acquire time.
        t: SimTime,
    },
    /// A job found the pool exhausted and joined its wait queue.
    PoolBlock {
        /// The pool.
        pool: PoolId,
        /// The blocked job.
        job: JobId,
        /// Block time.
        t: SimTime,
    },
    /// A released connection was handed directly to a waiting job.
    PoolGrant {
        /// The pool.
        pool: PoolId,
        /// The handed-over connection.
        conn: ConnectionId,
        /// The job that had been waiting.
        job: JobId,
        /// The waiting job's owning request.
        request: RequestId,
        /// Grant time.
        t: SimTime,
    },
    /// A pooled connection was released (its reply was delivered).
    PoolRelease {
        /// The pool.
        pool: PoolId,
        /// The released connection.
        conn: ConnectionId,
        /// Release time.
        t: SimTime,
    },
    /// A fan-in copy arrived at a join node (only recorded for nodes with
    /// more than one parent).
    FanIn {
        /// The request.
        request: RequestId,
        /// The join node.
        node: PathNodeId,
        /// The instance the copy arrived at, or `None` when the join is the
        /// client sink (the response leaves the service mesh there).
        instance: Option<InstanceId>,
        /// Copies arrived so far, including this one.
        arrivals: u32,
        /// Parents the node waits for.
        fan_in: u32,
        /// Arrivals needed to fire — equals `fan_in` under the default
        /// `all` policy, fewer under `quorum(k)` / `best_effort`.
        required: u32,
        /// True when this arrival reached `required` and the node fired.
        fired: bool,
        /// Arrival time.
        t: SimTime,
    },
    /// A job finished the last stage of its path node.
    NodeDone {
        /// The request.
        request: RequestId,
        /// The finishing job.
        job: JobId,
        /// The completed node.
        node: PathNodeId,
        /// The executing instance.
        instance: InstanceId,
        /// The executing thread.
        thread: ThreadId,
        /// Completion time.
        t: SimTime,
    },
    /// The response reached the issuing client.
    RequestCompleted {
        /// The request.
        request: RequestId,
        /// Its request type.
        request_type: RequestTypeId,
        /// True if the client-side timeout fired first.
        timed_out: bool,
        /// True if this completion was counted by the latency recorder
        /// (post-warmup and not timed out).
        measured: bool,
        /// Completion time.
        t: SimTime,
    },
    /// A client-side timeout fired before the response arrived.
    RequestTimeout {
        /// The request.
        request: RequestId,
        /// Timeout time.
        t: SimTime,
    },
    /// A fault killed the request's last in-flight branch; no response ever
    /// reached the client (a terminal outcome, like `RequestCompleted`).
    RequestDropped {
        /// The request.
        request: RequestId,
        /// Drop time.
        t: SimTime,
    },
    /// An open circuit breaker shed the request at emission; the client got
    /// an instant degraded response (a terminal outcome).
    RequestShed {
        /// The request.
        request: RequestId,
        /// Shed time.
        t: SimTime,
    },
    /// A resilience policy re-emitted a failed operation as this fresh
    /// request (always directly preceded by its `RequestEmitted`).
    RequestRetry {
        /// The new request carrying the retry.
        request: RequestId,
        /// Attempt number (1 = first retry).
        attempt: u32,
        /// Emission time.
        t: SimTime,
    },
    /// A fault killed one in-flight job (crash drain, crash arrival, dead
    /// batch, or exhausted retransmissions).
    JobKilled {
        /// The killed job.
        job: JobId,
        /// Its owning request.
        request: RequestId,
        /// Kill time.
        t: SimTime,
    },
}

impl TraceEvent {
    /// The event's timestamp (the start time for interval events).
    pub fn time(&self) -> SimTime {
        match *self {
            TraceEvent::RequestEmitted { t, .. }
            | TraceEvent::RequestLaunched { t, .. }
            | TraceEvent::Enqueue { t, .. }
            | TraceEvent::PoolAcquire { t, .. }
            | TraceEvent::PoolBlock { t, .. }
            | TraceEvent::PoolGrant { t, .. }
            | TraceEvent::PoolRelease { t, .. }
            | TraceEvent::FanIn { t, .. }
            | TraceEvent::NodeDone { t, .. }
            | TraceEvent::RequestCompleted { t, .. }
            | TraceEvent::RequestTimeout { t, .. }
            | TraceEvent::RequestDropped { t, .. }
            | TraceEvent::RequestShed { t, .. }
            | TraceEvent::RequestRetry { t, .. }
            | TraceEvent::JobKilled { t, .. } => t,
            TraceEvent::NetRx { start, .. } | TraceEvent::BatchStart { start, .. } => start,
        }
    }
}

/// An append-only, bounded event log filled by the simulator while span
/// tracing is enabled. When the capacity is reached further events are
/// counted as dropped instead of recorded, so the retained prefix is always
/// a complete record of the run up to the cutoff.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceLog {
    /// Creates an empty log holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, or counts it as dropped once the log is full.
    pub(crate) fn record(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Appends the event produced by `make`, or counts a drop once the log
    /// is full — the closure never runs in that case, so callers can defer
    /// expensive payloads (e.g. cloning a batch's job list) until the
    /// record is known to be retained.
    pub(crate) fn record_with(&mut self, make: impl FnOnce() -> TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(make());
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that arrived after the log filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Correlates [`TraceEvent::Enqueue`] and [`TraceEvent::BatchStart`]
    /// events into per-job stage spans, in service order. Jobs whose
    /// enqueue fell outside the log are omitted.
    pub fn spans(&self) -> Vec<StageSpan> {
        let mut pending: HashMap<(JobId, u32, u32), (SimTime, RequestId, PathNodeId)> =
            HashMap::new();
        let mut out = Vec::new();
        for ev in &self.events {
            match ev {
                TraceEvent::Enqueue {
                    job,
                    request,
                    node,
                    instance,
                    stage,
                    t,
                } => {
                    pending.insert((*job, instance.raw(), stage.raw()), (*t, *request, *node));
                }
                TraceEvent::BatchStart {
                    instance,
                    machine,
                    stage,
                    thread,
                    core,
                    freq_ghz,
                    start,
                    end,
                    jobs,
                } => {
                    for &job in jobs {
                        let Some((enqueue_t, request, node)) =
                            pending.remove(&(job, instance.raw(), stage.raw()))
                        else {
                            continue;
                        };
                        out.push(StageSpan {
                            request,
                            job,
                            node,
                            instance: *instance,
                            machine: *machine,
                            stage: *stage,
                            thread: *thread,
                            core: *core,
                            enqueue_t,
                            start_t: *start,
                            end_t: *end,
                            batch_size: jobs.len() as u32,
                            freq_ghz: *freq_ghz,
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }
}

/// One fully-correlated stage span: a job's wait in a stage queue followed
/// by its batched service — the unit of analysis the paper's §III-B stage
/// model produces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSpan {
    /// The owning request.
    pub request: RequestId,
    /// The job (one request visit to one path node).
    pub job: JobId,
    /// The path node the job was visiting.
    pub node: PathNodeId,
    /// The executing instance.
    pub instance: InstanceId,
    /// The machine hosting the instance.
    pub machine: MachineId,
    /// The stage.
    pub stage: StageId,
    /// The worker thread that serviced the batch.
    pub thread: ThreadId,
    /// Machine-local core index the batch ran on.
    pub core: u32,
    /// When the job entered the stage queue.
    pub enqueue_t: SimTime,
    /// When batched service began.
    pub start_t: SimTime,
    /// When batched service finished.
    pub end_t: SimTime,
    /// Number of jobs in the batch.
    pub batch_size: u32,
    /// Core frequency during service, GHz.
    pub freq_ghz: f64,
}

impl StageSpan {
    /// Time spent waiting in the stage queue, seconds.
    pub fn queue_wait_s(&self) -> f64 {
        (self.start_t - self.enqueue_t).as_secs_f64()
    }

    /// Total enqueue-to-service-end time, seconds.
    pub fn total_s(&self) -> f64 {
        (self.end_t - self.enqueue_t).as_secs_f64()
    }
}

/// Entity names needed to render a human-readable trace; obtained from
/// [`Simulator::trace_meta`](crate::Simulator::trace_meta).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceMeta {
    /// One entry per machine.
    pub machines: Vec<MachineMeta>,
    /// One entry per deployed instance.
    pub instances: Vec<InstanceMeta>,
    /// One entry per request type.
    pub request_types: Vec<RequestTypeMeta>,
    /// One entry per connection pool.
    pub pools: Vec<PoolMeta>,
    /// One entry per client.
    pub clients: Vec<ClientMeta>,
}

/// Display metadata for one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineMeta {
    /// Machine name.
    pub name: String,
    /// Total cores (instance-owned plus irq).
    pub cores: usize,
}

/// Display metadata for one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceMeta {
    /// Instance name.
    pub name: String,
    /// Hosting machine index.
    pub machine: u32,
    /// Stage names of the instance's service, in stage order.
    pub stages: Vec<String>,
}

/// Display metadata for one request type.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTypeMeta {
    /// Request-type name.
    pub name: String,
    /// Node names, in node-id order.
    pub nodes: Vec<String>,
}

/// Display metadata for one connection pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolMeta {
    /// Upstream (acquiring) instance name.
    pub up: String,
    /// Downstream (target) instance name.
    pub down: String,
}

/// Display metadata for one client.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientMeta {
    /// Client name.
    pub name: String,
}

fn ts_us(t: SimTime) -> f64 {
    t.as_nanos() as f64 / 1e3
}

fn req_id_str(r: RequestId) -> String {
    format!("{}.{}", r.slot(), r.generation())
}

/// Renders a [`TraceLog`] as Chrome `trace_event` JSON (the "JSON Array
/// Format" with metadata), directly loadable in `about:tracing` or
/// [Perfetto](https://ui.perfetto.dev). Machines map to processes, cores to
/// threads; batch services and irq processing are complete (`"X"`) spans;
/// requests are async (`"b"`/`"e"`) spans on a synthetic `requests`
/// process; pool blocking and timeouts appear as instant events.
pub fn chrome_trace(log: &TraceLog, meta: &TraceMeta) -> Value {
    let mut events: Vec<Value> = Vec::new();
    let req_pid = meta.machines.len() as u64;
    for (m, mm) in meta.machines.iter().enumerate() {
        events.push(json!({
            "ph": "M", "name": "process_name", "pid": m as u64, "tid": 0u64,
            "args": {"name": mm.name.clone()}
        }));
        for c in 0..mm.cores {
            events.push(json!({
                "ph": "M", "name": "thread_name", "pid": m as u64, "tid": c as u64,
                "args": {"name": format!("core{c}")}
            }));
        }
    }
    events.push(json!({
        "ph": "M", "name": "process_name", "pid": req_pid, "tid": 0u64,
        "args": {"name": "requests"}
    }));
    for ev in log.events() {
        match ev {
            TraceEvent::BatchStart {
                instance,
                machine,
                stage,
                thread,
                core,
                freq_ghz,
                start,
                end,
                jobs,
            } => {
                let inst = &meta.instances[instance.index()];
                let stage_name = inst
                    .stages
                    .get(stage.index())
                    .cloned()
                    .unwrap_or_else(|| format!("stage{}", stage.raw()));
                events.push(json!({
                    "name": format!("{}/{}", inst.name, stage_name),
                    "cat": "stage", "ph": "X",
                    "ts": ts_us(*start), "dur": ts_us(*end) - ts_us(*start),
                    "pid": machine.raw() as u64, "tid": *core as u64,
                    "args": {
                        "instance": inst.name.clone(),
                        "stage": stage_name,
                        "thread": thread.raw() as u64,
                        "batch_size": jobs.len() as u64,
                        "freq_ghz": *freq_ghz
                    }
                }));
            }
            TraceEvent::NetRx {
                machine,
                core,
                job,
                start,
                end,
            } => {
                events.push(json!({
                    "name": "net_rx", "cat": "net", "ph": "X",
                    "ts": ts_us(*start), "dur": ts_us(*end) - ts_us(*start),
                    "pid": machine.raw() as u64, "tid": *core as u64,
                    "args": {"job": format!("{}.{}", job.slot(), job.generation())}
                }));
            }
            TraceEvent::RequestEmitted {
                request,
                request_type,
                client,
                t,
            } => {
                let name = meta
                    .request_types
                    .get(request_type.index())
                    .map(|ty| ty.name.clone())
                    .unwrap_or_else(|| format!("type{}", request_type.raw()));
                events.push(json!({
                    "name": name, "cat": "request", "ph": "b",
                    "id": req_id_str(*request),
                    "ts": ts_us(*t), "pid": req_pid, "tid": 0u64,
                    "args": {"client": client.raw() as u64}
                }));
            }
            TraceEvent::RequestCompleted {
                request,
                request_type,
                timed_out,
                measured,
                t,
            } => {
                let name = meta
                    .request_types
                    .get(request_type.index())
                    .map(|ty| ty.name.clone())
                    .unwrap_or_else(|| format!("type{}", request_type.raw()));
                events.push(json!({
                    "name": name, "cat": "request", "ph": "e",
                    "id": req_id_str(*request),
                    "ts": ts_us(*t), "pid": req_pid, "tid": 0u64,
                    "args": {"timed_out": *timed_out, "measured": *measured}
                }));
            }
            TraceEvent::PoolBlock { pool, job, t } => {
                events.push(json!({
                    "name": "pool_block", "cat": "pool", "ph": "i", "s": "g",
                    "ts": ts_us(*t), "pid": req_pid, "tid": 0u64,
                    "args": {
                        "pool": pool.raw() as u64,
                        "job": format!("{}.{}", job.slot(), job.generation())
                    }
                }));
            }
            TraceEvent::RequestTimeout { request, t } => {
                events.push(json!({
                    "name": "timeout", "cat": "request", "ph": "i", "s": "g",
                    "ts": ts_us(*t), "pid": req_pid, "tid": 0u64,
                    "args": {"request": req_id_str(*request)}
                }));
            }
            _ => {}
        }
    }
    json!({
        "traceEvents": Value::Array(events),
        "displayTimeUnit": "ms"
    })
}

/// Ground-truth counters from the simulator, cross-checked against the
/// event log by the auditor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditCounts {
    /// Requests generated ([`Simulator::generated`](crate::Simulator::generated)).
    pub generated: u64,
    /// Requests completed ([`Simulator::completed`](crate::Simulator::completed)).
    pub completed: u64,
    /// Requests still in flight ([`Simulator::live_requests`](crate::Simulator::live_requests)).
    pub live_requests: u64,
    /// Requests whose client-side timeout fired ([`Simulator::timeouts`](crate::Simulator::timeouts)).
    pub timeouts: u64,
    /// Completions retained by the end-to-end latency recorder (post-warmup
    /// and not timed out).
    pub measured: u64,
    /// Requests terminally dropped by a fault
    /// ([`Simulator::dropped`](crate::Simulator::dropped)).
    pub dropped: u64,
    /// Requests shed by an open circuit breaker
    /// ([`Simulator::shed`](crate::Simulator::shed)).
    pub shed: u64,
}

/// The auditor's findings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Invariant violations found; empty on a clean run.
    pub violations: Vec<String>,
    /// Non-fatal observations (e.g. checks skipped due to log truncation).
    pub notes: Vec<String>,
    /// Total events examined.
    pub events_checked: usize,
    /// Correlated stage spans examined.
    pub spans_checked: usize,
}

impl AuditReport {
    /// True when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Replays a [`TraceLog`] against the simulator's invariants. See the
/// [module docs](self) for the full list of checks.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceAuditor {
    /// Cap on reported violations (the log can contain millions of events;
    /// a broken invariant usually breaks everywhere at once).
    pub max_violations: usize,
}

impl TraceAuditor {
    /// Creates an auditor with the default violation cap (100).
    pub fn new() -> Self {
        TraceAuditor {
            max_violations: 100,
        }
    }

    /// Audits the log against `counts`. The returned report lists every
    /// violation found (up to the cap) — an empty list means the run upheld
    /// all checked invariants.
    pub fn audit(&self, log: &TraceLog, counts: &AuditCounts) -> AuditReport {
        let cap = self.max_violations.max(1);
        let mut report = AuditReport {
            events_checked: log.len(),
            ..AuditReport::default()
        };
        let truncated = log.dropped() > 0;
        if truncated {
            report.notes.push(format!(
                "log truncated ({} events dropped): conservation and completeness checks skipped",
                log.dropped()
            ));
        }
        macro_rules! violation {
            ($($arg:tt)*) => {
                if report.violations.len() < cap {
                    report.violations.push(format!($($arg)*));
                }
            };
        }

        // ---- Request lifecycle and conservation -------------------------
        // Every emitted request must reach exactly one terminal outcome:
        // completed, dropped, or shed. Timeouts are an orthogonal flag (a
        // timed-out request may still complete late or be dropped).
        let mut emitted: HashMap<RequestId, SimTime> = HashMap::new();
        let mut completed: HashMap<RequestId, SimTime> = HashMap::new();
        let mut terminal: HashMap<RequestId, &'static str> = HashMap::new();
        let mut dropped_events = 0u64;
        let mut shed_events = 0u64;
        let mut measured_events = 0u64;
        let mut timeout_events = 0u64;
        let mut terminal_of = |request: RequestId, kind: &'static str| -> Option<&'static str> {
            terminal.insert(request, kind)
        };
        for ev in log.events() {
            match ev {
                TraceEvent::RequestEmitted { request, t, .. } => {
                    let prev = emitted.insert(*request, *t);
                    if prev.is_some() {
                        violation!("request {request} emitted twice");
                    }
                }
                TraceEvent::RequestLaunched { request, t, .. } => match emitted.get(request) {
                    Some(&e) if *t < e => {
                        violation!("request {request} launched at {t} before emission at {e}");
                    }
                    None if !truncated => {
                        violation!("request {request} launched but never emitted");
                    }
                    _ => {}
                },
                TraceEvent::RequestCompleted {
                    request,
                    t,
                    measured,
                    ..
                } => {
                    if completed.insert(*request, *t).is_some() {
                        violation!("request {request} completed twice");
                    }
                    if let Some(prev) = terminal_of(*request, "completed") {
                        violation!("request {request} completed after terminal {prev}");
                    }
                    if !truncated && !emitted.contains_key(request) {
                        violation!("request {request} completed but never emitted");
                    }
                    if *measured {
                        measured_events += 1;
                    }
                }
                TraceEvent::RequestDropped { request, .. } => {
                    dropped_events += 1;
                    if let Some(prev) = terminal_of(*request, "dropped") {
                        violation!("request {request} dropped after terminal {prev}");
                    }
                    if !truncated && !emitted.contains_key(request) {
                        violation!("request {request} dropped but never emitted");
                    }
                }
                TraceEvent::RequestShed { request, .. } => {
                    shed_events += 1;
                    if let Some(prev) = terminal_of(*request, "shed") {
                        violation!("request {request} shed after terminal {prev}");
                    }
                    if !truncated && !emitted.contains_key(request) {
                        violation!("request {request} shed but never emitted");
                    }
                }
                TraceEvent::RequestRetry { request, .. }
                    if !truncated && !emitted.contains_key(request) =>
                {
                    violation!("retry request {request} has no emission");
                }
                TraceEvent::RequestTimeout { .. } => timeout_events += 1,
                _ => {}
            }
        }
        if !truncated {
            let e = emitted.len() as u64;
            let c = completed.len() as u64;
            if e != c + dropped_events + shed_events + counts.live_requests {
                violation!(
                    "conservation: {e} emitted != {c} completed + {dropped_events} dropped + \
                     {shed_events} shed + {} in flight",
                    counts.live_requests
                );
            }
            if e != counts.generated {
                violation!(
                    "emitted events ({e}) disagree with generated counter ({})",
                    counts.generated
                );
            }
            if c != counts.completed {
                violation!(
                    "completion events ({c}) disagree with completed counter ({})",
                    counts.completed
                );
            }
            if dropped_events != counts.dropped {
                violation!(
                    "drop events ({dropped_events}) disagree with dropped counter ({})",
                    counts.dropped
                );
            }
            if shed_events != counts.shed {
                violation!(
                    "shed events ({shed_events}) disagree with shed counter ({})",
                    counts.shed
                );
            }
            if timeout_events != counts.timeouts {
                violation!(
                    "timeout events ({timeout_events}) disagree with timeout counter ({})",
                    counts.timeouts
                );
            }
            if measured_events != counts.measured {
                violation!(
                    "warmup accounting: {measured_events} measured completions \
                     vs {} recorder samples",
                    counts.measured
                );
            }
        }

        // ---- Span causality ---------------------------------------------
        // Requests whose fan-in fired early (quorum / best-effort) have
        // straggler branches legitimately executing after completion.
        let early_fired: std::collections::HashSet<RequestId> = log
            .events()
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::FanIn {
                    request,
                    required,
                    fan_in,
                    fired: true,
                    ..
                } if required < fan_in => Some(*request),
                _ => None,
            })
            .collect();
        let spans = log.spans();
        report.spans_checked = spans.len();
        for s in &spans {
            if s.enqueue_t > s.start_t || s.start_t > s.end_t {
                violation!(
                    "span ordering: job {} at {}/{} has enqueue {} start {} end {}",
                    s.job,
                    s.instance,
                    s.stage,
                    s.enqueue_t,
                    s.start_t,
                    s.end_t
                );
            }
            if let Some(&e) = emitted.get(&s.request) {
                if s.enqueue_t < e {
                    violation!(
                        "causality: request {} enqueued at {} before emission at {e}",
                        s.request,
                        s.enqueue_t
                    );
                }
            }
            if let Some(&c) = completed.get(&s.request) {
                if s.end_t > c && !early_fired.contains(&s.request) {
                    violation!(
                        "causality: request {} span ends at {} after completion at {c}",
                        s.request,
                        s.end_t
                    );
                }
            }
        }

        // ---- Non-overlap per core and per thread ------------------------
        let mut per_core: HashMap<(u32, u32), Vec<(u64, u64)>> = HashMap::new();
        let mut per_thread: HashMap<(u32, u32), Vec<(u64, u64)>> = HashMap::new();
        for ev in log.events() {
            match ev {
                TraceEvent::BatchStart {
                    instance,
                    machine,
                    thread,
                    core,
                    start,
                    end,
                    ..
                } => {
                    per_core
                        .entry((machine.raw(), *core))
                        .or_default()
                        .push((start.as_nanos(), end.as_nanos()));
                    per_thread
                        .entry((instance.raw(), thread.raw()))
                        .or_default()
                        .push((start.as_nanos(), end.as_nanos()));
                }
                TraceEvent::NetRx {
                    machine,
                    core,
                    start,
                    end,
                    ..
                } => {
                    per_core
                        .entry((machine.raw(), *core))
                        .or_default()
                        .push((start.as_nanos(), end.as_nanos()));
                }
                _ => {}
            }
        }
        for (kind, map) in [("core", &mut per_core), ("thread", &mut per_thread)] {
            for (key, intervals) in map.iter_mut() {
                intervals.sort_unstable();
                for w in intervals.windows(2) {
                    if w[1].0 < w[0].1 {
                        violation!(
                            "non-overlap: {kind} {key:?} services [{}, {}) and [{}, {}) \
                             concurrently",
                            w[0].0,
                            w[0].1,
                            w[1].0,
                            w[1].1
                        );
                    }
                }
            }
        }

        // ---- Fan-in discipline ------------------------------------------
        let mut fan_state: HashMap<(RequestId, PathNodeId), (u32, bool)> = HashMap::new();
        for ev in log.events() {
            if let TraceEvent::FanIn {
                request,
                node,
                arrivals,
                fan_in,
                required,
                fired,
                ..
            } = ev
            {
                if *arrivals > *fan_in {
                    violation!(
                        "fan-in: request {request} node {node} saw arrival {arrivals} of {fan_in}"
                    );
                }
                if *required == 0 || *required > *fan_in {
                    violation!(
                        "fan-in: request {request} node {node} requires {required} of {fan_in}"
                    );
                }
                if *fired != (*arrivals == *required) {
                    violation!(
                        "fan-in: request {request} node {node} fired={fired} at arrival \
                         {arrivals} (requires {required} of {fan_in})"
                    );
                }
                let state = fan_state.entry((*request, *node)).or_insert((0, false));
                if *arrivals != state.0 + 1 {
                    violation!(
                        "fan-in: request {request} node {node} arrivals jumped {} -> {arrivals}",
                        state.0
                    );
                }
                // Arrivals after the firing are only legitimate absorbed
                // stragglers under an early-firing (quorum) policy.
                if state.1 && *required == *fan_in {
                    violation!("fan-in: request {request} node {node} arrival after firing");
                }
                *state = (*arrivals, state.1 || *fired);
            }
        }

        // ---- Connection-pool discipline ---------------------------------
        let mut conn_busy: HashMap<ConnectionId, bool> = HashMap::new();
        for ev in log.events() {
            match ev {
                TraceEvent::PoolAcquire { conn, .. } | TraceEvent::PoolGrant { conn, .. } => {
                    let was_busy = conn_busy.insert(*conn, true);
                    if was_busy == Some(true) {
                        violation!("pool: connection {conn} acquired while busy");
                    }
                }
                TraceEvent::PoolRelease { conn, .. } => {
                    let was_busy = conn_busy.insert(*conn, false);
                    if was_busy != Some(true) {
                        violation!("pool: connection {conn} released while free");
                    }
                }
                _ => {}
            }
        }

        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u32) -> RequestId {
        RequestId::new(n, 0)
    }
    fn jid(n: u32) -> JobId {
        JobId::new(n, 0)
    }
    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn log_of(events: Vec<TraceEvent>) -> TraceLog {
        let mut log = TraceLog::new(events.len() + 16);
        for e in events {
            log.record(e);
        }
        log
    }

    fn emit(n: u32, at: u64) -> TraceEvent {
        TraceEvent::RequestEmitted {
            request: rid(n),
            request_type: RequestTypeId::from_raw(0),
            client: ClientId::from_raw(0),
            t: t(at),
        }
    }

    fn complete(n: u32, at: u64) -> TraceEvent {
        TraceEvent::RequestCompleted {
            request: rid(n),
            request_type: RequestTypeId::from_raw(0),
            timed_out: false,
            measured: true,
            t: t(at),
        }
    }

    fn batch(core: u32, start: u64, end: u64, jobs: Vec<JobId>) -> TraceEvent {
        TraceEvent::BatchStart {
            instance: InstanceId::from_raw(0),
            machine: MachineId::from_raw(0),
            stage: StageId::from_raw(0),
            thread: ThreadId::from_raw(0),
            core,
            freq_ghz: 2.6,
            start: t(start),
            end: t(end),
            jobs,
        }
    }

    fn counts(generated: u64, completed: u64, live: u64, measured: u64) -> AuditCounts {
        AuditCounts {
            generated,
            completed,
            live_requests: live,
            timeouts: 0,
            measured,
            dropped: 0,
            shed: 0,
        }
    }

    fn fan_in(
        req: u32,
        arrivals: u32,
        fan_in: u32,
        required: u32,
        fired: bool,
        at: u64,
    ) -> TraceEvent {
        TraceEvent::FanIn {
            request: rid(req),
            node: PathNodeId::from_raw(2),
            instance: Some(InstanceId::from_raw(0)),
            arrivals,
            fan_in,
            required,
            fired,
            t: t(at),
        }
    }

    #[test]
    fn clean_log_passes() {
        let log = log_of(vec![
            emit(1, 0),
            TraceEvent::Enqueue {
                job: jid(1),
                request: rid(1),
                node: PathNodeId::from_raw(0),
                instance: InstanceId::from_raw(0),
                stage: StageId::from_raw(0),
                t: t(10),
            },
            batch(0, 20, 30, vec![jid(1)]),
            complete(1, 40),
        ]);
        let report = TraceAuditor::new().audit(&log, &counts(1, 1, 0, 1));
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.spans_checked, 1);
        let spans = log.spans();
        assert_eq!(spans[0].enqueue_t, t(10));
        assert_eq!(spans[0].start_t, t(20));
        assert_eq!(spans[0].end_t, t(30));
        assert_eq!(spans[0].batch_size, 1);
    }

    #[test]
    fn conservation_violation_detected() {
        let log = log_of(vec![emit(1, 0), emit(2, 5)]);
        // Claim both completed: emitted (2) != completed (0) + live (0).
        let report = TraceAuditor::new().audit(&log, &counts(2, 2, 0, 2));
        assert!(!report.is_clean());
        assert!(
            report.violations.iter().any(|v| v.contains("conservation")),
            "{report:?}"
        );
    }

    #[test]
    fn double_completion_detected() {
        let log = log_of(vec![emit(1, 0), complete(1, 10), complete(1, 20)]);
        let report = TraceAuditor::new().audit(&log, &counts(1, 2, 0, 2));
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("completed twice")),
            "{report:?}"
        );
    }

    #[test]
    fn core_overlap_detected() {
        let disjoint = TraceEvent::BatchStart {
            instance: InstanceId::from_raw(0),
            machine: MachineId::from_raw(0),
            stage: StageId::from_raw(0),
            thread: ThreadId::from_raw(1),
            core: 1,
            freq_ghz: 2.6,
            start: t(50),
            end: t(150),
            jobs: vec![jid(3)],
        };
        let log = log_of(vec![
            batch(0, 0, 100, vec![jid(1)]),
            batch(0, 50, 150, vec![jid(2)]), // overlaps on core 0 and thread 0
            disjoint,                        // different core and thread: fine
        ]);
        let report = TraceAuditor::new().audit(&log, &counts(0, 0, 0, 0));
        let overlaps: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.contains("non-overlap"))
            .collect();
        // One per-core and one per-thread overlap (same thread serviced both).
        assert_eq!(overlaps.len(), 2, "{report:?}");
    }

    #[test]
    fn span_ordering_violation_detected() {
        let log = log_of(vec![
            TraceEvent::Enqueue {
                job: jid(1),
                request: rid(1),
                node: PathNodeId::from_raw(0),
                instance: InstanceId::from_raw(0),
                stage: StageId::from_raw(0),
                t: t(50), // enqueued after service started
            },
            batch(0, 20, 30, vec![jid(1)]),
        ]);
        let report = TraceAuditor::new().audit(&log, &counts(0, 0, 0, 0));
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("span ordering")),
            "{report:?}"
        );
    }

    #[test]
    fn fan_in_over_arrival_detected() {
        let log = log_of(vec![
            fan_in(1, 1, 2, 2, false, 0),
            fan_in(1, 2, 2, 2, true, 5),
            fan_in(1, 3, 2, 2, false, 9),
        ]);
        let report = TraceAuditor::new().audit(&log, &counts(0, 0, 0, 0));
        assert!(
            report.violations.iter().any(|v| v.contains("fan-in")),
            "{report:?}"
        );
    }

    #[test]
    fn quorum_absorbs_stragglers_cleanly() {
        // required=2 of fan_in=3: firing at the 2nd arrival and absorbing
        // the 3rd is legitimate — no violation.
        let log = log_of(vec![
            fan_in(1, 1, 3, 2, false, 0),
            fan_in(1, 2, 3, 2, true, 5),
            fan_in(1, 3, 3, 2, false, 9),
        ]);
        let report = TraceAuditor::new().audit(&log, &counts(0, 0, 0, 0));
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn quorum_misfire_detected() {
        // required=2 but the node fired at the first arrival.
        let log = log_of(vec![fan_in(1, 1, 3, 2, true, 0)]);
        let report = TraceAuditor::new().audit(&log, &counts(0, 0, 0, 0));
        assert!(
            report.violations.iter().any(|v| v.contains("fired=true")),
            "{report:?}"
        );
    }

    #[test]
    fn terminal_outcomes_are_exclusive_and_conserved() {
        let log = log_of(vec![
            emit(1, 0),
            emit(2, 1),
            emit(3, 2),
            complete(1, 10),
            TraceEvent::RequestDropped {
                request: rid(2),
                t: t(11),
            },
            TraceEvent::RequestShed {
                request: rid(3),
                t: t(12),
            },
        ]);
        let mut c = counts(3, 1, 0, 1);
        c.dropped = 1;
        c.shed = 1;
        let report = TraceAuditor::new().audit(&log, &c);
        assert!(report.is_clean(), "{:?}", report.violations);

        // A request both dropped and completed is a violation.
        let log = log_of(vec![
            emit(1, 0),
            TraceEvent::RequestDropped {
                request: rid(1),
                t: t(5),
            },
            complete(1, 10),
        ]);
        let mut c = counts(1, 1, 0, 1);
        c.dropped = 1;
        let report = TraceAuditor::new().audit(&log, &c);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("after terminal")),
            "{report:?}"
        );
    }

    #[test]
    fn drop_count_mismatch_detected() {
        let log = log_of(vec![
            emit(1, 0),
            TraceEvent::RequestDropped {
                request: rid(1),
                t: t(5),
            },
        ]);
        // Counter claims zero drops but the log has one.
        let report = TraceAuditor::new().audit(&log, &counts(1, 0, 0, 0));
        assert!(
            report.violations.iter().any(|v| v.contains("drop events")),
            "{report:?}"
        );
    }

    #[test]
    fn pool_double_acquire_detected() {
        let c = ConnectionId::from_raw(7);
        let p = PoolId::from_raw(0);
        let log = log_of(vec![
            TraceEvent::PoolAcquire {
                pool: p,
                conn: c,
                job: jid(1),
                t: t(0),
            },
            TraceEvent::PoolAcquire {
                pool: p,
                conn: c,
                job: jid(2),
                t: t(5),
            },
            TraceEvent::PoolRelease {
                pool: p,
                conn: c,
                t: t(10),
            },
            TraceEvent::PoolRelease {
                pool: p,
                conn: c,
                t: t(15),
            },
        ]);
        let report = TraceAuditor::new().audit(&log, &counts(0, 0, 0, 0));
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("acquired while busy")),
            "{report:?}"
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("released while free")),
            "{report:?}"
        );
    }

    #[test]
    fn warmup_accounting_mismatch_detected() {
        let log = log_of(vec![emit(1, 0), complete(1, 10)]);
        // The recorder claims 5 samples but only one measured completion.
        let report = TraceAuditor::new().audit(&log, &counts(1, 1, 0, 5));
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("warmup accounting")),
            "{report:?}"
        );
    }

    #[test]
    fn truncated_log_skips_conservation() {
        let mut log = TraceLog::new(1);
        log.record(emit(1, 0));
        log.record(emit(2, 5)); // dropped
        assert_eq!(log.dropped(), 1);
        let report = TraceAuditor::new().audit(&log, &counts(2, 0, 2, 0));
        assert!(report.is_clean(), "{:?}", report.violations);
        assert!(!report.notes.is_empty());
    }

    #[test]
    fn chrome_trace_shape() {
        let meta = TraceMeta {
            machines: vec![MachineMeta {
                name: "m0".into(),
                cores: 2,
            }],
            instances: vec![InstanceMeta {
                name: "svc0".into(),
                machine: 0,
                stages: vec!["proc".into()],
            }],
            request_types: vec![RequestTypeMeta {
                name: "get".into(),
                nodes: vec!["svc".into(), "client_sink".into()],
            }],
            pools: vec![],
            clients: vec![ClientMeta { name: "wrk".into() }],
        };
        let log = log_of(vec![
            emit(1, 1_000),
            batch(0, 2_000, 3_500, vec![jid(1)]),
            complete(1, 5_000),
        ]);
        let v = chrome_trace(&log, &meta);
        let events = v["traceEvents"].as_array().unwrap();
        // 1 process + 2 thread metadata + 1 requests process + 3 payload.
        assert_eq!(events.len(), 7);
        let span = events
            .iter()
            .find(|e| e["ph"] == "X")
            .expect("complete span present");
        assert_eq!(span["name"], "svc0/proc");
        assert_eq!(span["ts"].as_f64().unwrap(), 2.0);
        assert_eq!(span["dur"].as_f64().unwrap(), 1.5);
        let b = events.iter().find(|e| e["ph"] == "b").unwrap();
        let e = events.iter().find(|e| e["ph"] == "e").unwrap();
        assert_eq!(b["id"], e["id"]);
        assert_eq!(b["name"], "get");
    }
}
