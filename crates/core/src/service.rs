//! Microservice models: stages assembled into execution paths.
//!
//! A [`ServiceModel`] is the reusable template described by one
//! `service.json` (Listing 1 of the paper): a set of [`StageSpec`]s plus
//! *execution paths* — named sequences of stage indices a job can follow —
//! and an optional probability distribution over paths (the "state machine"
//! of §III-B, used e.g. for MongoDB cache-hit vs. cache-miss behavior).

use crate::ids::StageId;
use crate::stage::StageSpec;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One intra-microservice execution path: an ordered stage sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecPath {
    /// Human-readable name (e.g. `"memcached_read"`).
    pub name: String,
    /// Stage indices to traverse, in order.
    pub stages: Vec<StageId>,
}

impl ExecPath {
    /// Creates a path from a name and stage indices.
    pub fn new(name: impl Into<String>, stages: Vec<StageId>) -> Self {
        ExecPath {
            name: name.into(),
            stages,
        }
    }
}

/// A reusable microservice model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Service name (e.g. `"memcached"`).
    pub name: String,
    /// The stages.
    pub stages: Vec<StageSpec>,
    /// The execution paths.
    pub paths: Vec<ExecPath>,
    /// Optional probabilities for choosing a path at job entry when the
    /// caller requests probabilistic selection. Must be the same length as
    /// `paths` and sum to 1.
    #[serde(default)]
    pub path_probabilities: Option<Vec<f64>>,
}

impl ServiceModel {
    /// Creates a model; validate with [`ServiceModel::validate`].
    pub fn new(name: impl Into<String>, stages: Vec<StageSpec>, paths: Vec<ExecPath>) -> Self {
        ServiceModel {
            name: name.into(),
            stages,
            paths,
            path_probabilities: None,
        }
    }

    /// Sets the path-selection probabilities.
    pub fn with_path_probabilities(mut self, probs: Vec<f64>) -> Self {
        self.path_probabilities = Some(probs);
        self
    }

    /// Validates structural integrity.
    ///
    /// # Errors
    ///
    /// Returns a message if the model has no stages/paths, a path references
    /// a missing stage, or probabilities are malformed.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("service name is empty".into());
        }
        if self.stages.is_empty() {
            return Err(format!("service {}: no stages", self.name));
        }
        if self.paths.is_empty() {
            return Err(format!("service {}: no execution paths", self.name));
        }
        for s in &self.stages {
            s.validate()?;
        }
        for p in &self.paths {
            if p.stages.is_empty() {
                return Err(format!("service {}: path {} is empty", self.name, p.name));
            }
            for &sid in &p.stages {
                if sid.index() >= self.stages.len() {
                    return Err(format!(
                        "service {}: path {} references missing stage {}",
                        self.name, p.name, sid
                    ));
                }
            }
        }
        if let Some(probs) = &self.path_probabilities {
            if probs.len() != self.paths.len() {
                return Err(format!(
                    "service {}: {} probabilities for {} paths",
                    self.name,
                    probs.len(),
                    self.paths.len()
                ));
            }
            let total: f64 = probs.iter().sum();
            if probs.iter().any(|p| !p.is_finite() || *p < 0.0) || (total - 1.0).abs() > 1e-6 {
                return Err(format!(
                    "service {}: path probabilities invalid (sum {total})",
                    self.name
                ));
            }
        }
        Ok(())
    }

    /// Looks up a path index by name.
    pub fn path_index(&self, name: &str) -> Option<usize> {
        self.paths.iter().position(|p| p.name == name)
    }

    /// Looks up a stage index by name.
    pub fn stage_index(&self, name: &str) -> Option<StageId> {
        self.stages
            .iter()
            .position(|s| s.name == name)
            .map(|i| StageId::from_raw(i as u32))
    }

    /// Chooses a path probabilistically (requires `path_probabilities`),
    /// or path 0 if no probabilities are configured.
    pub fn choose_path<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match &self.path_probabilities {
            None => 0,
            Some(probs) => {
                let mut u: f64 = rng.gen();
                for (i, p) in probs.iter().enumerate() {
                    if u < *p {
                        return i;
                    }
                    u -= p;
                }
                probs.len() - 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::stage::{QueueDiscipline, ServiceTimeModel};

    fn stage(name: &str) -> StageSpec {
        StageSpec::new(
            name,
            QueueDiscipline::Single,
            ServiceTimeModel::per_job(Distribution::constant(1e-6), 2.6),
        )
    }

    fn model() -> ServiceModel {
        ServiceModel::new(
            "svc",
            vec![stage("a"), stage("b")],
            vec![
                ExecPath::new("read", vec![StageId::from_raw(0), StageId::from_raw(1)]),
                ExecPath::new("write", vec![StageId::from_raw(0)]),
            ],
        )
    }

    #[test]
    fn valid_model_passes() {
        assert!(model().validate().is_ok());
    }

    #[test]
    fn rejects_missing_stage_reference() {
        let mut m = model();
        m.paths[0].stages.push(StageId::from_raw(9));
        assert!(m.validate().is_err());
    }

    #[test]
    fn rejects_empty_parts() {
        let mut m = model();
        m.paths.clear();
        assert!(m.validate().is_err());
        let mut m = model();
        m.stages.clear();
        assert!(m.validate().is_err());
        let mut m = model();
        m.paths[0].stages.clear();
        assert!(m.validate().is_err());
    }

    #[test]
    fn rejects_bad_probabilities() {
        let m = model().with_path_probabilities(vec![0.5]);
        assert!(m.validate().is_err());
        let m = model().with_path_probabilities(vec![0.5, 0.6]);
        assert!(m.validate().is_err());
        let m = model().with_path_probabilities(vec![0.3, 0.7]);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn lookup_by_name() {
        let m = model();
        assert_eq!(m.path_index("write"), Some(1));
        assert_eq!(m.path_index("nope"), None);
        assert_eq!(m.stage_index("b"), Some(StageId::from_raw(1)));
        assert_eq!(m.stage_index("nope"), None);
    }

    #[test]
    fn choose_path_respects_probabilities() {
        let m = model().with_path_probabilities(vec![0.2, 0.8]);
        let mut rng = crate::rng::RngFactory::new(5).stream("svc", 0);
        let n = 100_000;
        let writes = (0..n).filter(|_| m.choose_path(&mut rng) == 1).count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.01, "write fraction {frac}");
    }

    #[test]
    fn choose_path_defaults_to_first() {
        let m = model();
        let mut rng = crate::rng::RngFactory::new(5).stream("svc", 1);
        assert_eq!(m.choose_path(&mut rng), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let m = model().with_path_probabilities(vec![0.3, 0.7]);
        let json = serde_json::to_string_pretty(&m).unwrap();
        let back: ServiceModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
